//! CLI for the workspace static analyzer.
//!
//! ```text
//! cargo run --release --bin flcheck -- [--root DIR] [--json FILE] [--rule NAME] [--quiet]
//! cargo run --release --bin flcheck -- --rules | --explain RULE
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage or
//! I/O errors. `--json` additionally writes the machine-readable report
//! (the harness points it at `results/flcheck_report.json`). `--rule`
//! restricts the report — findings, summary, and exit code — to one rule
//! id (repeatable), handy when iterating on a single discipline.
//! `--rules` prints every rule id, one per line (the harness drives its
//! per-rule gate loop off this, so a new pass can't ship without a
//! gate); `--explain RULE` prints the rule's family, a one-paragraph
//! description, and a minimal triggering example.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut rules: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json requires a file path"),
            },
            "--rules" => {
                for rule in flcheck::report::ALL_RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(v) => match flcheck::explain::doc_for(&v) {
                    Some(doc) => {
                        println!(
                            "{} ({} family, since PR {})",
                            doc.rule, doc.family, doc.since
                        );
                        println!();
                        println!("{}", doc.detail);
                        println!();
                        println!("example:");
                        for line in doc.example.lines() {
                            println!("    {line}");
                        }
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        return usage(&format!(
                            "unknown rule `{v}` (known: {})",
                            flcheck::report::ALL_RULES.join(", ")
                        ))
                    }
                },
                None => return usage("--explain requires a rule id"),
            },
            "--rule" => match args.next() {
                Some(v) if flcheck::report::ALL_RULES.contains(&v.as_str()) => rules.push(v),
                Some(v) => {
                    return usage(&format!(
                        "unknown rule `{v}` (known: {})",
                        flcheck::report::ALL_RULES.join(", ")
                    ))
                }
                None => return usage("--rule requires a rule id"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: flcheck [--root DIR] [--json FILE] [--rule NAME] [--quiet]\n\
                     \x20      flcheck --rules | --explain RULE\n\
                     Static analysis: constant-time discipline, panic freedom, \
                     lock discipline, cost-model conformance, determinism flow, \
                     race detection, width conformance, unit flow.\n\
                     --rule NAME    keep only findings for this rule id (repeatable)\n\
                     --rules        print every rule id, one per line\n\
                     --explain RULE print a rule's description and example"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut report = match flcheck::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flcheck: error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !rules.is_empty() {
        report
            .findings
            .retain(|f| rules.iter().any(|r| *r == f.rule));
    }

    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("flcheck: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_human());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("flcheck: {msg} (see --help)");
    ExitCode::from(2)
}
