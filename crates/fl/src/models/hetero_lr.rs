//! Heterogeneous (vertical) logistic regression (Hardy et al., the
//! paper's "Hetero LR").
//!
//! Participants hold disjoint feature ranges of the same instances; only
//! the active party (shard 0) holds labels. Per mini-batch:
//!
//! 1. every party computes its partial scores `u_k = X_k·w_k` locally;
//! 2. the partial scores are *securely summed* (encrypt → aggregate →
//!    decrypt) so the active party learns only `u = Σ u_k`;
//! 3. the active party forms the residual `d = σ(u) − y` and sends it
//!    *encrypted* to every passive party;
//! 4. each party computes its local gradient `X_kᵀ d / |B|` and uploads it
//!    encrypted to the coordinator for the masked model update.
//!
//! Every cross-party value passes through the backend's quantize/encrypt
//! round trip, so the trained model carries the real quantization error.

// flcheck: allow-file(pf-index) — batch/shard/feature indices are bounded
// by the shapes fixed at vertical-split time (shards share instance count;
// weight vectors are sized to each shard's feature range).

use crate::data::{vertical_split, Dataset, VerticalShard};
use crate::metrics::{EpochBreakdown, EpochResult};
use crate::models::{scale_down, scale_up};
use crate::optim::{Adam, Optimizer};
use crate::train::{logloss, sigmoid, FlEnv, FlModel, TrainConfig};
use crate::{Error, Result};

/// Vertically-federated logistic regression.
pub struct HeteroLr {
    dataset_name: String,
    shards: Vec<VerticalShard>,
    labels: Vec<f64>,
    weights: Vec<Vec<f64>>,
    opts: Vec<Adam>,
    loss: f64,
}

impl HeteroLr {
    /// Splits `dataset` vertically across `participants` parties.
    pub fn new(dataset: &Dataset, participants: u32, cfg: &TrainConfig) -> Result<Self> {
        let shards = vertical_split(dataset, participants);
        let labels = shards[0]
            .labels
            .clone()
            .ok_or_else(|| Error::BadConfig("active party must hold labels".into()))?;
        let weights: Vec<Vec<f64>> = shards.iter().map(|s| vec![0.0; s.num_features()]).collect();
        let opts = shards
            .iter()
            .map(|_| {
                let mut o = Adam::new(cfg.learning_rate);
                o.l2 = cfg.l2;
                o
            })
            .collect();
        let mut model = HeteroLr {
            dataset_name: dataset.name.clone(),
            shards,
            labels,
            weights,
            opts,
            loss: f64::NAN,
        };
        model.loss = model.global_loss();
        Ok(model)
    }

    /// Per-shard weights (for tests).
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    fn partial_scores(&self, shard: usize, range: &std::ops::Range<usize>) -> (Vec<f64>, u64) {
        let s = &self.shards[shard];
        let mut out = Vec::with_capacity(range.len());
        let mut flops = 0u64;
        for i in range.clone() {
            out.push(s.rows[i].dot(&self.weights[shard]));
            flops += 2 * s.rows[i].nnz() as u64;
        }
        (out, flops)
    }

    fn global_loss(&self) -> f64 {
        let n = self.labels.len();
        let mut preds = Vec::with_capacity(n);
        for i in 0..n {
            let u: f64 = (0..self.shards.len())
                .map(|k| self.shards[k].rows[i].dot(&self.weights[k]))
                .sum();
            preds.push(sigmoid(u));
        }
        logloss(&preds, &self.labels)
    }
}

impl FlModel for HeteroLr {
    fn name(&self) -> &'static str {
        "Hetero LR"
    }

    fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    fn loss(&self) -> f64 {
        self.loss
    }

    fn run_epoch(&mut self, env: &FlEnv, cfg: &TrainConfig, epoch: usize) -> Result<EpochResult> {
        let mut breakdown = EpochBreakdown::default();
        let n = self.labels.len();
        let p = self.shards.len();
        let batches: Vec<std::ops::Range<usize>> = (0..n.div_ceil(cfg.batch_size.max(1)))
            .map(|b| (b * cfg.batch_size)..(((b + 1) * cfg.batch_size).min(n)))
            .collect();

        for (round, range) in batches.iter().enumerate() {
            let seed = cfg.seed ^ ((epoch as u64) << 24) ^ ((round as u64) << 8);

            // (1)+(2) partial scores, securely summed.
            let mut score_parts = Vec::with_capacity(p);
            let mut flops = 0u64;
            for k in 0..p {
                let (u_k, f) = self.partial_scores(k, range);
                score_parts.push(scale_down(&u_k));
                flops += f;
            }
            env.charge_local_compute(flops / p as u64, cfg, &mut breakdown);
            let u = scale_up(&env.aggregation_round(&score_parts, seed, &mut breakdown)?);

            // (3) residuals, encrypted broadcast to the passive parties.
            let d: Vec<f64> = range
                .clone()
                .zip(&u)
                .map(|(i, &ui)| sigmoid(ui) - self.labels[i])
                .collect();
            let mut d_rt = Vec::new();
            for k in 1..p {
                d_rt = env.encrypted_exchange(&d, seed ^ (k as u64) << 16, &mut breakdown)?;
            }
            if p == 1 {
                d_rt = d.clone();
            }

            // (4) local gradients, encrypted upload to the coordinator.
            let count = range.len().max(1) as f64;
            for k in 0..p {
                // The active party uses its exact residual; passive parties
                // use the round-tripped copy they received.
                let dk = if k == 0 { &d } else { &d_rt };
                let s = &self.shards[k];
                let mut grad = vec![0.0; self.weights[k].len()];
                let mut flops = 0u64;
                for (j, i) in range.clone().enumerate() {
                    s.rows[i].axpy_into(dk[j] / count, &mut grad);
                    flops += 2 * s.rows[i].nnz() as u64;
                }
                env.charge_local_compute(flops / p as u64, cfg, &mut breakdown);
                let grad_rt =
                    env.encrypted_exchange(&grad, seed ^ ((k as u64) << 40), &mut breakdown)?;
                self.opts[k].step(&mut self.weights[k], &grad_rt);
            }
        }

        self.loss = self.global_loss();
        Ok(EpochResult {
            breakdown,
            loss: self.loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Accelerator, BackendKind};
    use crate::data::generators::DatasetSpec;
    use he::paillier::PaillierKeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env(kind: BackendKind) -> FlEnv {
        let mut rng = ChaCha8Rng::seed_from_u64(0x2207);
        let keys = PaillierKeyPair::generate(&mut rng, 128).unwrap();
        FlEnv::new(Accelerator::new(kind, keys, 4).unwrap(), 2)
    }

    fn small_dataset() -> Dataset {
        let mut spec = DatasetSpec::synthetic();
        spec.features = 24;
        spec.nnz_per_row = 24;
        spec.instances = 300;
        spec.generate(1.0)
    }

    #[test]
    fn loss_decreases() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroLr::new(&data, 2, &cfg).unwrap();
        let initial = model.loss();
        for e in 0..3 {
            model.run_epoch(&env, &cfg, e).unwrap();
        }
        assert!(
            model.loss() < initial - 0.01,
            "{} vs {initial}",
            model.loss()
        );
    }

    #[test]
    fn breakdown_has_all_components() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 128,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::Haflo);
        let mut model = HeteroLr::new(&data, 3, &cfg).unwrap();
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        assert!(b.he_seconds > 0.0 && b.comm_seconds > 0.0 && b.other_seconds > 0.0);
        // Scores + residual broadcasts + gradient uploads all pass HE.
        assert!(b.he_values > 0);
    }

    #[test]
    fn shards_receive_gradient_updates() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroLr::new(&data, 2, &cfg).unwrap();
        model.run_epoch(&env, &cfg, 0).unwrap();
        for (k, w) in model.weights().iter().enumerate() {
            assert!(
                w.iter().any(|&x| x != 0.0),
                "shard {k} weights never updated"
            );
        }
    }

    #[test]
    fn single_party_degenerates_to_plain_lr() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroLr::new(&data, 1, &cfg).unwrap();
        let initial = model.loss();
        model.run_epoch(&env, &cfg, 0).unwrap();
        assert!(model.loss() < initial);
    }
}
