//! Paillier cryptosystem benches: encrypt / decrypt (direct vs the CRT
//! fast path, an FLBooster design choice) / homomorphic add, plus the
//! CPU-vs-GPU-simulator batch throughput that underlies Table IV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{Device, DeviceConfig};
use he::ghe::{CpuHe, GpuHe};
use he::paillier::PaillierKeyPair;
use he::HeBackend;
use mpint::Natural;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE);

    for bits in [512u32, 1024] {
        let keys = PaillierKeyPair::generate(&mut rng, bits).expect("keygen");
        let m = Natural::from(0xDEAD_BEEFu64);
        let r = Natural::from(0x1234_5677u64);
        let c1 = keys.public.encrypt(&m, &mut rng).unwrap();
        let c2 = keys.public.encrypt(&m, &mut rng).unwrap();

        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |bench, _| {
            bench.iter(|| black_box(keys.public.encrypt_with_r(black_box(&m), &r).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("decrypt_direct", bits),
            &bits,
            |bench, _| bench.iter(|| black_box(keys.private.decrypt(black_box(&c1)).unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("decrypt_crt", bits), &bits, |bench, _| {
            bench.iter(|| black_box(keys.private.decrypt_crt(black_box(&c1)).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("homomorphic_add", bits),
            &bits,
            |bench, _| bench.iter(|| black_box(keys.public.add(black_box(&c1), black_box(&c2)))),
        );
    }
    group.finish();
}

fn bench_batch_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_batch");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBA);
    let keys = PaillierKeyPair::generate(&mut rng, 512).expect("keygen");
    let batch: Vec<Natural> = (0..64u64).map(Natural::from).collect();
    group.throughput(Throughput::Elements(batch.len() as u64));

    let cpu = CpuHe::default();
    group.bench_function("cpu_encrypt_64", |bench| {
        bench.iter(|| {
            black_box(
                cpu.encrypt_batch(&keys.public, black_box(&batch), 1)
                    .unwrap(),
            )
        })
    });

    let gpu = GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())));
    group.bench_function("gpusim_encrypt_64", |bench| {
        bench.iter(|| {
            black_box(
                gpu.encrypt_batch(&keys.public, black_box(&batch), 1)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_primitives, bench_batch_backends
}
criterion_main!(benches);
