//! Fixture: a public API that reaches a panic two calls deep — the
//! interprocedural pf-reach case.

pub fn api(v: &[u64]) -> u64 {
    middle(v)
}

fn middle(v: &[u64]) -> u64 {
    deep(v)
}

fn deep(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
