//! Datasets: generation, representation, and federated partitioning.
//!
//! The paper evaluates on RCV1 (NLP, sparse), Avazu (CTR, very sparse),
//! and the LEAF Synthetic benchmark (dense). Those exact files are not
//! available offline, so [`generators`] produces deterministic synthetic
//! datasets with the same statistical profiles — instance count, feature
//! dimension, density, and a planted linear concept so that logistic
//! models actually converge. A `scale` factor shrinks the instance count
//! for laptop runs without changing the feature geometry that drives the
//! acceleration results.

mod dataset;
pub mod generators;
mod partition;

pub use dataset::{Dataset, SparseRow};
pub use partition::{horizontal_split, vertical_split, VerticalShard};
