//! Plain-text table rendering for harness output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Seconds formatted the way the paper's tables read (1 decimal above
/// 10 s, 3 significant digits below).
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else if v >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// A percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// A speedup factor.
pub fn speedup(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("---"));
        // Columns align: the second column starts at the same offset.
        let off0 = lines[0].find("long-header").unwrap();
        let off2 = lines[2].find('2').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(12345.6), "12346");
        assert_eq!(secs(57.8), "57.8");
        assert_eq!(secs(9.234), "9.234");
        assert_eq!(secs(0.0001234), "1.23e-4");
        assert_eq!(pct(0.521), "52.1%");
        assert_eq!(speedup(14.33), "14.3x");
        assert_eq!(speedup(138.2), "138x");
    }
}
