//! Fixture: every panic-freedom rule fires in library (non-test) code.

pub fn all_panic_paths(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    assert!(xs.len() > 1, "need two");
    if xs.len() > 9 {
        panic!("too many");
    }
    head + tail + xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() {
        let v = [1u64, 2];
        assert_eq!(v[0], 1);
        v.first().unwrap();
    }
}
