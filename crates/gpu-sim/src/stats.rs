//! Accumulated device statistics.

use crate::kernel::LaunchReport;
use crate::memory::MemoryCounters;

/// One utilization observation, tagged by kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSample {
    /// Kernel name.
    pub kernel: &'static str,
    /// SM utilization 0.0–1.0.
    pub utilization: f64,
    /// Occupancy component of the sample.
    pub occupancy: f64,
}

/// Running totals across every launch on a device.
///
/// These feed the paper's RQ2 evaluation (throughput and hardware
/// utilization, Table IV / Fig. 6) and the component-time analysis of
/// Table VI.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Number of kernel launches.
    pub launches: u64,
    /// Total work items processed.
    pub items: u64,
    /// Host wall-clock seconds inside kernel bodies.
    pub wall_seconds: f64,
    /// Simulated seconds: host→device copies.
    pub sim_h2d_seconds: f64,
    /// Simulated seconds: kernel compute.
    pub sim_kernel_seconds: f64,
    /// Simulated seconds: device→host copies.
    pub sim_d2h_seconds: f64,
    /// Bytes copied host→device.
    pub bytes_in: u64,
    /// Bytes copied device→host.
    pub bytes_out: u64,
    /// Limb-level thread operations executed.
    pub thread_ops: u64,
    /// Per-launch utilization samples.
    pub utilization_samples: Vec<UtilizationSample>,
    /// Memory-table counters snapshot (refreshed on read).
    pub memory: MemoryCounters,
}

impl DeviceStats {
    /// Folds one launch report into the totals.
    // flcheck: charge-sink
    pub fn record(&mut self, report: &LaunchReport) {
        self.launches += 1;
        self.items += report.items as u64;
        self.wall_seconds += report.wall_seconds;
        self.sim_h2d_seconds += report.sim_h2d_seconds;
        self.sim_kernel_seconds += report.sim_kernel_seconds;
        self.sim_d2h_seconds += report.sim_d2h_seconds;
        self.bytes_in += report.bytes_in;
        self.bytes_out += report.bytes_out;
        self.thread_ops += report.total_thread_ops;
        self.utilization_samples.push(UtilizationSample {
            kernel: report.name,
            utilization: report.sm_utilization,
            occupancy: report.plan.occupancy,
        });
    }

    /// Mean SM utilization across launches (0.0 when no launches).
    pub fn mean_sm_utilization(&self) -> f64 {
        if self.utilization_samples.is_empty() {
            return 0.0;
        }
        self.utilization_samples
            .iter()
            .map(|s| s.utilization)
            .sum::<f64>()
            / self.utilization_samples.len() as f64
    }

    /// Total simulated device seconds.
    pub fn sim_total_seconds(&self) -> f64 {
        self.sim_h2d_seconds + self.sim_kernel_seconds + self.sim_d2h_seconds
    }

    /// Items per simulated second — the Table-IV throughput metric.
    pub fn sim_throughput(&self) -> f64 {
        let t = self.sim_total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.items as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{LaunchPlan, OccupancyLimit};

    fn report(util: f64, items: usize) -> LaunchReport {
        LaunchReport {
            name: "k",
            items,
            plan: LaunchPlan {
                threads_per_block: 32,
                num_blocks: 1,
                total_threads: 32,
                blocks_per_sm: 1,
                resident_threads_per_sm: 32,
                occupancy: util,
                effective_registers_per_thread: 32,
                limited_by: OccupancyLimit::Threads,
                waves: 1,
            },
            wall_seconds: 0.5,
            pool_threads: 1,
            sim_h2d_seconds: 1.0,
            sim_kernel_seconds: 2.0,
            sim_d2h_seconds: 1.0,
            bytes_in: 100,
            bytes_out: 200,
            total_thread_ops: 64,
            divergent_fraction: 0.0,
            sm_utilization: util,
        }
    }

    #[test]
    fn record_accumulates() {
        let mut s = DeviceStats::default();
        s.record(&report(0.5, 10));
        s.record(&report(1.0, 20));
        assert_eq!(s.launches, 2);
        assert_eq!(s.items, 30);
        assert_eq!(s.bytes_in, 200);
        assert_eq!(s.bytes_out, 400);
        assert_eq!(s.thread_ops, 128);
        assert!((s.mean_sm_utilization() - 0.75).abs() < 1e-12);
        assert!((s.sim_total_seconds() - 8.0).abs() < 1e-12);
        assert!((s.sim_throughput() - 30.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DeviceStats::default();
        assert_eq!(s.mean_sm_utilization(), 0.0);
        assert_eq!(s.sim_throughput(), 0.0);
    }
}
