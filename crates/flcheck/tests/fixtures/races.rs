//! Race fixture: closure captures crossing the work-stealing pool.
//! Exercised by tests/fixtures.rs through the workspace analysis.

fn shared_mut(items: &[u64]) {
    let mut total = 0u64;
    items.par_iter().for_each(|x| {
        total += x;
    });
}

fn unsynced_push(items: &[u64]) {
    let mut log = Vec::new();
    spawn(move || {
        log.push(items.len());
    });
}

fn cell_steal(items: &[u64]) {
    let hits = RefCell::new(0u64);
    items.par_iter().for_each(|x| {
        hits.borrow();
    });
}

fn fanout(scope: &Scope, stats: &Stats) {
    scope.spawn(move || record(stats));
}

fn record(stats: &Stats) {
    stats.push(1);
}

fn locked_is_clean(items: &[u64], stats: &Mutex) {
    items.par_iter().for_each(|x| {
        stats.lock().push(*x);
    });
}
