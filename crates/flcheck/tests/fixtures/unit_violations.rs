//! Unit-flow fixture: `unit-mismatch`, `unit-unconverted`, and
//! `charge-unphased` at pinned lines.
//!
//! Analyzed under the synthetic path `crates/fl/src/engine.rs` so the
//! `charge-unphased` anchor (`run_round`) resolves; like every
//! fixture, never compiled.

// flcheck: convert(bytes->seconds)
fn transfer_seconds(bytes: f64) -> f64 {
    bytes / 1.0e9
}

// flcheck: charge-sink
fn charge_sleep(seconds: f64) -> f64 {
    seconds
}

// flcheck: charge-sink
fn charge_double(seconds: f64, b: &mut Breakdown) {
    b.phases.compute_seconds += seconds;
    b.phases.encrypt_seconds += seconds;
}

// flcheck: charge-sink
fn charge_ok(seconds: f64, b: &mut Breakdown) {
    b.phases.uplink_seconds += seconds;
}

fn relay(amount: f64) -> f64 {
    charge_sleep(amount)
}

pub fn run_round(payload_bytes: f64, b: &mut Breakdown) -> f64 {
    let mut total_seconds = 0.0;
    total_seconds += payload_bytes;
    let deadline_seconds = 1.0;
    if deadline_seconds < payload_bytes {
        total_seconds += transfer_seconds(payload_bytes);
    }
    charge_double(total_seconds, b);
    charge_ok(total_seconds, b);
    relay(payload_bytes)
}
