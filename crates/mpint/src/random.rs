//! Random multi-precision integer generation.
//!
//! The paper assigns "a random number generator for each thread in a warp"
//! (Sec. IV-A3); here every call site passes its own `Rng`, so the GPU
//! simulator can hand one deterministic per-lane generator to each thread
//! while tests use seeded [`rand_chacha`] streams.

// flcheck: allow-file(pf-index) — `v[last]` with `last = limbs - 1` where
// `limbs >= 1` is guaranteed by the early `bits == 0` return.

use rand::Rng;

use crate::limb::{Limb, LIMB_BITS};
use crate::natural::Natural;

/// Uniform random integer with exactly `bits` significant bits
/// (the top bit is forced to 1); `bits == 0` yields zero.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Natural {
    if bits == 0 {
        return Natural::zero();
    }
    let limbs = bits.div_ceil(LIMB_BITS) as usize;
    let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits - (limbs as u32 - 1) * LIMB_BITS;
    let last = limbs - 1;
    if top_bits < LIMB_BITS {
        v[last] &= (1u64 << top_bits) - 1;
    }
    v[last] |= 1u64 << (top_bits - 1); // force exact bit length
    Natural::from_limbs(v)
}

/// Uniform random integer in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Natural) -> Natural {
    // Documented panic: sampling from an empty range has no other answer.
    // flcheck: allow(pf-assert)
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bit_len();
    loop {
        // Sample `bits` unconstrained bits; expected < 2 iterations.
        let limbs = bits.div_ceil(LIMB_BITS) as usize;
        let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs as u32 - 1) * LIMB_BITS;
        if top_bits < LIMB_BITS {
            let last = limbs - 1;
            v[last] &= (1u64 << top_bits) - 1;
        }
        let candidate = Natural::from_limbs(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Random element of `Z_n^*` (unit group): nonzero, coprime with `n`.
///
/// Paillier encryption draws its blinding factor `r` from here
/// (paper Eq. 3: "selects a random integer r ∈ Z*_{n²}").
pub fn random_coprime<R: Rng + ?Sized>(rng: &mut R, n: &Natural) -> Natural {
    // Documented panic: Z_n^* is empty for n <= 1, the loop would hang.
    // flcheck: allow(pf-assert)
    assert!(n > &Natural::one(), "group requires n > 1");
    loop {
        let candidate = random_below(rng, n);
        if candidate.is_zero() {
            continue;
        }
        if crate::gcd::gcd(&candidate, n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xF1B0_0575)
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1u32, 2, 63, 64, 65, 128, 1024] {
            let v = random_bits(&mut r, bits);
            assert_eq!(v.bit_len(), bits, "requested {bits} bits");
        }
        assert!(random_bits(&mut r, 0).is_zero());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = Natural::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        // Over 3 values, all should appear within a few hundred draws.
        let mut r = rng();
        let bound = Natural::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = random_below(&mut r, &bound).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn random_coprime_is_unit() {
        let mut r = rng();
        let n = Natural::from(3 * 5 * 7 * 11u64);
        for _ in 0..50 {
            let u = random_coprime(&mut r, &n);
            assert!(!u.is_zero() && &u < &n);
            assert!(crate::gcd::gcd(&u, &n).is_one());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_bits(&mut rng(), 256);
        let b = random_bits(&mut rng(), 256);
        assert_eq!(a, b, "same seed, same stream");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_below_zero_bound_panics() {
        random_below(&mut rng(), &Natural::zero());
    }
}
