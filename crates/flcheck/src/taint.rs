//! Interprocedural secret-taint analysis.
//!
//! Seeds come from `// flcheck: secret(name, ..)` directives: the named
//! parameters/locals of the following fn hold key material (Paillier
//! λ/μ/p/q, RSA d/d_p/d_q, plaintexts, limb buffers in the ct ladders).
//! Taint propagates intraprocedurally through `let` bindings, plain and
//! compound assignments, and `for`-pattern bindings, and
//! interprocedurally along call edges into `ct-fn` callees (argument
//! position → parameter name). Reaching a non-ct sink raises `ct-taint`:
//!
//! - a branch condition (`if` / `while` / `match` header),
//! - a slice/array index expression,
//! - an explicit `return` of a tainted value,
//! - a `len()`-dependent loop bound over a tainted buffer,
//! - a call passing a tainted argument (or receiver) to a fn that is not
//!   marked `ct-fn` — including unresolvable, non-whitelisted names.
//!
//! Deliberate approximations, chosen to match how the `mpint`/`he`
//! kernels are written:
//!
//! - `x.len()` / `x.is_empty()` of a tainted buffer is treated as
//!   *public* (limb buffers have fixed padded widths) everywhere
//!   **except** as a loop bound, where the trip count is the canonical
//!   timing channel and an explicit `allow(ct-taint)` must document why
//!   the width is public.
//! - `for (i, x) in buf.iter().enumerate()` taints `x` but not the
//!   counter `i` — enumerate counters are public positions.
//! - Operator expressions (`&a * &b`) are not calls and are not sinks;
//!   the ct rules on the marked kernels cover them.
//! - Implicit tail returns are not sinks (every fn returning a secret
//!   would fire); explicit `return` statements are.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::parse::{FnItem, ParsedFile};
use crate::report::Finding;
use crate::source::match_brace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Methods that neither branch on nor index by their inputs: calling them
/// on/with tainted values is timing-safe and raises no finding. Taint
/// still flows through their *results* via the ordinary `let`-RHS scan.
const METHOD_WHITELIST: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_shl",
    "wrapping_shr",
    "overflowing_add",
    "overflowing_sub",
    "overflowing_mul",
    "rotate_left",
    "rotate_right",
    "count_ones",
    "to_le_bytes",
    "to_be_bytes",
    "clone",
    "copied",
    "cloned",
    "iter",
    "iter_mut",
    "into_iter",
    "chunks",
    "windows",
    "zip",
    "enumerate",
    "rev",
    "skip",
    "take",
    "map",
    "fold",
    "sum",
    "collect",
    "get",
    "get_mut",
    "first",
    "last",
    "unwrap_or",
    "unwrap_or_default",
    "len",
    "is_empty",
    "as_slice",
    "as_mut_slice",
    "to_vec",
    "swap",
    "min",
    "max",
    "saturating_add",
    "saturating_sub",
];

/// Whitelisted methods that *mutate their receiver*: a tainted argument
/// taints the receiver's root binding.
const MUTATOR_METHODS: &[&str] = &[
    "push",
    "extend_from_slice",
    "copy_from_slice",
    "fill",
    "resize",
    "insert",
    "truncate",
];

/// Free-call names that wrap or move values without data-dependent
/// timing: constructors and conversion shims.
const FREE_WHITELIST: &[&str] = &[
    "Some",
    "Ok",
    "Err",
    "Vec",
    "from",
    "into",
    "new",
    "black_box",
];

/// Per-node analysis state.
#[derive(Default, Clone)]
struct NodeState {
    /// Parameter/local names tainted at entry (callers' taint + own
    /// `secret(..)` names). Monotonically grows.
    entry: BTreeSet<String>,
    /// Provenance chain for findings inside this fn (empty for seeds).
    chain: Vec<String>,
}

/// Runs the interprocedural taint pass over the workspace.
pub fn check_taint(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut states: BTreeMap<(usize, usize), NodeState> = BTreeMap::new();
    let mut work: VecDeque<(usize, usize)> = VecDeque::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if !f.secrets.is_empty() {
                states.insert(
                    (fi, gi),
                    NodeState {
                        entry: f.secrets.iter().cloned().collect(),
                        chain: Vec::new(),
                    },
                );
                work.push_back((fi, gi));
            }
        }
    }

    let mut findings: BTreeSet<(String, u32, String, Vec<String>)> = BTreeSet::new();
    let mut rounds = 0usize;
    while let Some(node) = work.pop_front() {
        // Monotone worklist over finite name sets: bounded, but guard
        // against surprises anyway.
        rounds += 1;
        if rounds > 10_000 {
            break;
        }
        let state = states.get(&node).cloned().unwrap_or_default();
        let props = analyze_fn(files, graph, node, &state, &mut findings);
        for (callee, params) in props {
            let chain_base = state.chain.clone();
            let st = states.entry(callee).or_default();
            let before = st.entry.len();
            st.entry.extend(params);
            if st.entry.len() > before {
                if st.chain.is_empty() {
                    let mut chain = chain_base;
                    if chain.is_empty() {
                        chain.push(hop(files, node));
                    }
                    chain.push(hop(files, callee));
                    st.chain = chain;
                }
                work.push_back(callee);
            }
        }
    }

    for (file, line, message, chain) in findings {
        out.push(Finding::with_chain("ct-taint", &file, line, message, chain));
    }
}

/// Formats one provenance hop.
fn hop(files: &[ParsedFile], n: (usize, usize)) -> String {
    let f = &files[n.0].fns[n.1];
    format!("{} ({}:{})", f.name, files[n.0].src.rel_path, f.line)
}

/// Analyzes one fn under the given entry taint: intraprocedural taint
/// fixpoint, then sink detection. Returns (callee, tainted params) for
/// interprocedural propagation.
#[allow(clippy::type_complexity)]
fn analyze_fn(
    files: &[ParsedFile],
    graph: &CallGraph,
    node: (usize, usize),
    state: &NodeState,
    findings: &mut BTreeSet<(String, u32, String, Vec<String>)>,
) -> Vec<((usize, usize), BTreeSet<String>)> {
    let pf = &files[node.0];
    let f = &pf.fns[node.1];
    let toks = &pf.src.tokens;
    let mut tainted: BTreeSet<String> = state.entry.clone();
    tainted.extend(f.secrets.iter().cloned());

    // --- intraprocedural fixpoint over bindings -------------------------
    loop {
        let before = tainted.len();
        let mut i = f.body_start;
        while i < f.body_end.min(toks.len()) {
            if let Some(n) = skip_at(pf, f, i) {
                i = n;
                continue;
            }
            let t = &toks[i];
            if t.is_ident("let") {
                let (names, rhs) = let_binding(toks, i, f.body_end);
                if let Some((rs, re)) = rhs {
                    if range_has_taint(toks, rs, re, &tainted).is_some() {
                        tainted.extend(names);
                    }
                }
            } else if t.is_ident("for") {
                for_binding(toks, i, f.body_end, &mut tainted);
            } else if t.kind == TokKind::Op
                && matches!(
                    t.text.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "|=" | "&="
                )
                && !(t.text == "=" && i > 0 && toks[i - 1].is_ident("let"))
            {
                // `target = rhs;` / `target op= rhs;`
                if let Some(target) = assign_target(toks, i, f.body_start) {
                    let re = stmt_end(toks, i + 1, f.body_end);
                    if range_has_taint(toks, i + 1, re, &tainted).is_some() {
                        tainted.insert(target);
                    }
                }
            } else if t.kind == TokKind::Ident
                && MUTATOR_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_op(".")
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                // `buf.push(x)` with tainted x taints `buf`.
                let close = match_brace(toks, i + 1);
                if range_has_taint(toks, i + 2, close.saturating_sub(1), &tainted).is_some() {
                    if let Some(root) = i
                        .checked_sub(2)
                        .filter(|&k| toks[k].kind == TokKind::Ident)
                        .map(|k| toks[k].text.clone())
                    {
                        tainted.insert(root);
                    }
                }
            }
            i += 1;
        }
        if tainted.len() == before {
            break;
        }
    }

    // --- sink detection -------------------------------------------------
    let mut emit = |line: u32, message: String| {
        if pf.src.is_allowed("ct-taint", line) {
            return;
        }
        let chain = if state.chain.len() >= 2 {
            state.chain.clone()
        } else {
            Vec::new()
        };
        findings.insert((pf.src.rel_path.clone(), line, message, chain));
    };

    let mut props: Vec<((usize, usize), BTreeSet<String>)> = Vec::new();
    let mut i = f.body_start;
    while i < f.body_end.min(toks.len()) {
        if let Some(n) = skip_at(pf, f, i) {
            i = n;
            continue;
        }
        let t = &toks[i];
        // (a) branch conditions.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match") {
            let end = header_end(toks, i + 1, f.body_end);
            if let Some(name) = range_has_taint(toks, i + 1, end, &tainted) {
                emit(
                    t.line,
                    format!(
                        "secret-tainted `{name}` influences a `{}` condition in `{}`",
                        t.text, f.name
                    ),
                );
            }
            // (d) len-dependent bound in a `while` header.
            if t.is_ident("while") {
                if let Some(name) = len_of_tainted(toks, i + 1, end, &tainted) {
                    emit(
                        t.line,
                        format!(
                            "loop bound depends on `len()` of secret-tainted `{name}` in `{}`",
                            f.name
                        ),
                    );
                }
            }
        }
        // (d) len-dependent bound in a `for` header.
        if t.is_ident("for") {
            let end = header_end(toks, i + 1, f.body_end);
            if let Some(name) = len_of_tainted(toks, i + 1, end, &tainted) {
                emit(
                    t.line,
                    format!(
                        "loop bound depends on `len()` of secret-tainted `{name}` in `{}`",
                        f.name
                    ),
                );
            }
        }
        // (b) tainted index expressions.
        if t.kind == TokKind::Open && t.text == "[" && crate::rules::is_indexing(toks, i) {
            let close = match_brace(toks, i);
            if let Some(name) = range_has_taint(toks, i + 1, close.saturating_sub(1), &tainted) {
                emit(
                    t.line,
                    format!(
                        "secret-tainted `{name}` used as a slice index in `{}`",
                        f.name
                    ),
                );
            }
        }
        // (c) explicit return of a tainted value.
        if t.is_ident("return") {
            let end = stmt_end(toks, i + 1, f.body_end);
            if let Some(name) = range_has_taint(toks, i + 1, end, &tainted) {
                emit(
                    t.line,
                    format!(
                        "secret-tainted `{name}` leaves `{}` via early return",
                        f.name
                    ),
                );
            }
        }
        i += 1;
    }

    // (e) calls with tainted arguments / receivers.
    for (ci, call) in f.calls.iter().enumerate() {
        let mut tainted_args: Vec<usize> = Vec::new();
        for (ai, &(s, e)) in call.args.iter().enumerate() {
            if range_has_taint(toks, s, e, &tainted).is_some() {
                tainted_args.push(ai);
            }
        }
        let recv_tainted = call
            .recv
            .is_some_and(|(s, e)| range_has_taint(toks, s, e, &tainted).is_some());
        if tainted_args.is_empty() && !recv_tainted {
            continue;
        }
        if call.is_method && METHOD_WHITELIST.contains(&call.callee.as_str()) {
            continue;
        }
        if call.is_method && MUTATOR_METHODS.contains(&call.callee.as_str()) {
            continue; // handled as receiver taint above, not a sink
        }
        let cands: Vec<(usize, usize)> = graph
            .out(node)
            .iter()
            .filter(|e| e.call == ci)
            .map(|e| e.to)
            .collect();
        if cands.is_empty() {
            if !call.is_method && FREE_WHITELIST.contains(&call.callee.as_str()) {
                continue;
            }
            emit(
                call.line,
                format!(
                    "secret-tainted value passed to unresolved non-ct `{}` in `{}`",
                    call.callee, f.name
                ),
            );
            continue;
        }
        if cands.iter().all(|&(fi, gi)| files[fi].fns[gi].is_ct) {
            // Propagate into the ct callee(s): argument position → param.
            for &(fi, gi) in &cands {
                let callee = &files[fi].fns[gi];
                let mut params: BTreeSet<String> = BTreeSet::new();
                let shift = usize::from(call.is_method && callee.is_method);
                if recv_tainted {
                    if let Some(p) = callee.params.first() {
                        params.insert(p.clone());
                    }
                }
                for &ai in &tainted_args {
                    if let Some(p) = callee.params.get(ai + shift) {
                        params.insert(p.clone());
                    }
                }
                if !params.is_empty() {
                    props.push(((fi, gi), params));
                }
            }
        } else {
            emit(
                call.line,
                format!(
                    "secret-tainted value passed to non-ct fn `{}` in `{}` (mark it `ct-fn` or allow with justification)",
                    call.callee, f.name
                ),
            );
        }
    }
    props
}

/// When `i` starts a skippable region (nested fn body or
/// `debug_assert*!`), returns the index just past it.
fn skip_at(pf: &ParsedFile, f: &FnItem, i: usize) -> Option<usize> {
    if let Some(&(_, ne)) = f.nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
        return Some(ne);
    }
    crate::rules::debug_assert_span(&pf.src.tokens, i)
}

/// Scans `[s, e)` for an identifier in the tainted set, exempting
/// `x.len()` / `x.is_empty()` occurrences (widths are public).
fn range_has_taint<'a>(
    toks: &'a [Token],
    s: usize,
    e: usize,
    tainted: &BTreeSet<String>,
) -> Option<&'a str> {
    for i in s..e.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !tainted.contains(&t.text) {
            continue;
        }
        let is_len_probe = toks.get(i + 1).is_some_and(|n| n.is_op("."))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.text == "len" || n.text == "is_empty")
            && toks.get(i + 3).is_some_and(|n| n.text == "(");
        if is_len_probe {
            continue;
        }
        return Some(&t.text);
    }
    None
}

/// Finds `tainted_ident . len (` inside a loop header.
fn len_of_tainted<'a>(
    toks: &'a [Token],
    s: usize,
    e: usize,
    tainted: &BTreeSet<String>,
) -> Option<&'a str> {
    for i in s..e.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && tainted.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_op("."))
            && toks.get(i + 2).is_some_and(|n| n.text == "len")
            && toks.get(i + 3).is_some_and(|n| n.text == "(")
        {
            return Some(&t.text);
        }
    }
    None
}

/// End of a statement: first `;` at relative bracket depth 0 (or `limit`).
fn stmt_end(toks: &[Token], s: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(limit.min(toks.len())).skip(s) {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            TokKind::Op if t.text == ";" && depth == 0 => return i,
            _ => {}
        }
    }
    limit
}

/// End of an `if`/`while`/`match`/`for` header: first `{` at relative
/// depth 0.
fn header_end(toks: &[Token], s: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(limit.min(toks.len())).skip(s) {
        match t.kind {
            TokKind::Open if t.text == "{" && depth == 0 => return i,
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            _ => {}
        }
    }
    limit
}

/// Parses a `let` statement at `i` (the `let` token): binding names and
/// the RHS token range, if any.
fn let_binding(toks: &[Token], i: usize, limit: usize) -> (Vec<String>, Option<(usize, usize)>) {
    let mut names = Vec::new();
    let mut k = i + 1;
    let mut depth = 0i32;
    // Names come from the pattern: idents before the (depth-0) `:` or `=`.
    while k < limit.min(toks.len()) {
        let t = &toks[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if depth == 0 && (t.text == ":" || t.text == "=" || t.text == ";") => break,
            TokKind::Ident
                if !matches!(t.text.as_str(), "mut" | "ref")
                    && !t.text.chars().next().is_some_and(|c| c.is_uppercase()) =>
            {
                names.push(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    // Skip a type annotation to the `=`.
    while k < limit.min(toks.len()) {
        let t = &toks[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if depth == 0 && t.text == "=" => {
                let end = stmt_end(toks, k + 1, limit);
                return (names, Some((k + 1, end)));
            }
            TokKind::Op if depth == 0 && t.text == ";" => break,
            _ => {}
        }
        k += 1;
    }
    (names, None)
}

/// Taints `for`-pattern bindings when the iterated expression is tainted.
/// With `.enumerate()` in the chain, the first tuple binding (the
/// counter) stays public.
fn for_binding(toks: &[Token], i: usize, limit: usize, tainted: &mut BTreeSet<String>) {
    // Pattern = tokens between `for` and the (depth-0) `in`.
    let mut k = i + 1;
    let mut depth = 0i32;
    let mut pat: Vec<String> = Vec::new();
    while k < limit.min(toks.len()) {
        let t = &toks[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Ident if depth == 0 && t.text == "in" => break,
            TokKind::Ident
                if !matches!(t.text.as_str(), "mut" | "ref")
                    && !t.text.chars().next().is_some_and(|c| c.is_uppercase()) =>
            {
                pat.push(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    let expr_start = k + 1;
    let expr_end = header_end(toks, expr_start, limit);
    if range_has_taint(toks, expr_start, expr_end, tainted).is_none() {
        return;
    }
    let has_enumerate = toks[expr_start..expr_end.min(toks.len())]
        .iter()
        .any(|t| t.is_ident("enumerate"));
    for (pi, name) in pat.iter().enumerate() {
        if has_enumerate && pi == 0 {
            continue; // the counter is a public position
        }
        tainted.insert(name.clone());
    }
}

/// Walks back from an assignment operator to the assigned root binding:
/// skips one trailing index group (`t[i] = ..` assigns into `t`) and
/// field chains (`s.acc = ..` taints `s`).
fn assign_target(toks: &[Token], op_idx: usize, body_start: usize) -> Option<String> {
    let mut k = op_idx.checked_sub(1)?;
    loop {
        if k < body_start {
            return None;
        }
        match toks[k].kind {
            TokKind::Close => {
                // Skip the `[ .. ]` / `( .. )` group.
                let mut depth = 0i32;
                loop {
                    match toks[k].kind {
                        TokKind::Close => depth += 1,
                        TokKind::Open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k = k.checked_sub(1)?;
                }
                k = k.checked_sub(1)?;
            }
            TokKind::Ident => {
                // Continue left over `a.b` / `a::b` chains to the root.
                match k.checked_sub(1) {
                    Some(p) if toks[p].is_op(".") || toks[p].is_op("::") => {
                        k = p.checked_sub(1)?;
                    }
                    _ => return Some(toks[k].text.clone()),
                }
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_taint(&parsed, &graph, &mut out);
        out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
        out
    }

    #[test]
    fn branch_index_return_and_len_sinks() {
        let src = "\
// flcheck: secret(key)
fn f(key: u64, table: &[u64], buf: &mut [u64]) -> u64 {
    if key == 0 {
        return key;
    }
    let x = table[key as usize];
    for i in 0..buf.len() {
        buf[i] = x;
    }
    x
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        let pairs: Vec<(u32, &str)> = out.iter().map(|f| (f.line, f.rule.as_str())).collect();
        // line 3: `if key == 0` branch; line 4: early return of key;
        // line 6: `table[key as usize]` index; line 7: `buf` becomes
        // tainted through the `buf[i] = x` write, so its `len()` loop
        // bound needs an explicit allow.
        assert_eq!(
            pairs,
            vec![
                (3, "ct-taint"),
                (4, "ct-taint"),
                (6, "ct-taint"),
                (7, "ct-taint")
            ]
        );
    }

    #[test]
    fn len_loop_bound_of_tainted_buffer_fires() {
        let src = "\
// flcheck: secret(limbs)
fn g(limbs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for i in 0..limbs.len() {
        acc = acc.wrapping_add(1);
    }
    acc
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("len()"));
    }

    #[test]
    fn taint_flows_through_let_and_assignments() {
        let src = "\
// flcheck: secret(d)
fn f(d: u64) {
    let masked = d ^ 0xff;
    let mut acc = 0u64;
    acc += masked;
    if acc == 0 {}
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].line, 6,
            "taint reached `acc` through let + compound assign"
        );
    }

    #[test]
    fn call_to_non_ct_helper_is_a_sink_and_ct_callee_propagates() {
        let src = "\
// flcheck: secret(exp)
fn outer(exp: u64) {
    leaky(exp);
    safe(exp);
}
fn leaky(e: u64) {}
// flcheck: ct-fn
fn safe(e: u64) {
    if e == 0 {}
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        let pairs: Vec<(u32, bool)> = out
            .iter()
            .map(|f| (f.line, f.message.contains("non-ct fn `leaky`")))
            .collect();
        // line 3: tainted call into non-ct `leaky`. The branch inside
        // `safe` (line 9) fires with an interprocedural chain.
        assert_eq!(pairs.len(), 2, "{out:?}");
        assert_eq!(pairs[0], (3, true));
        assert_eq!(out[1].line, 9);
        assert_eq!(
            out[1].chain,
            vec![
                "outer (crates/core/src/t.rs:2)",
                "safe (crates/core/src/t.rs:8)"
            ]
        );
    }

    #[test]
    fn enumerate_counter_stays_public() {
        let src = "\
// flcheck: secret(a)
fn f(a: &[u64], t: &mut [u64]) {
    for (j, &aj) in a.iter().enumerate() {
        t[j] = aj;
    }
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        assert!(out.is_empty(), "counter j must stay public: {out:?}");
    }

    #[test]
    fn allows_suppress_taint_findings() {
        let src = "\
// flcheck: secret(m)
fn f(m: u64, n: u64) -> bool {
    // flcheck: allow(ct-taint) -- range check leaks only validity
    if m >= n {
        return true;
    }
    false
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        // The early `return true` is not tainted (literal), and the
        // branch is allowed.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn whitelisted_methods_and_constructors_are_silent() {
        let src = "\
// flcheck: secret(x)
fn f(x: u64) -> Option<u64> {
    let y = x.wrapping_mul(3);
    let v = Some(y);
    v
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cross_file_propagation_carries_chains() {
        let a = "\
// flcheck: secret(lambda)
pub fn decrypt(lambda: u64) {
    kernel(lambda);
}
";
        let b = "\
// flcheck: ct-fn
pub fn kernel(e: u64) {
    let t = [0u64; 4];
    let x = t[e as usize];
}
";
        let out = run(&[("crates/he/src/a.rs", a), ("crates/mpint/src/b.rs", b)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, "crates/mpint/src/b.rs");
        assert_eq!(out[0].line, 4);
        assert_eq!(
            out[0].chain,
            vec![
                "decrypt (crates/he/src/a.rs:2)",
                "kernel (crates/mpint/src/b.rs:2)"
            ]
        );
    }

    #[test]
    fn mutator_methods_taint_their_receiver() {
        let src = "\
// flcheck: secret(d)
fn f(d: u64) {
    let mut buf = Vec::new();
    buf.push(d);
    if buf[0] == 1 {}
}
";
        let out = run(&[("crates/core/src/t.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5, "buf tainted via push: {out:?}");
    }
}
