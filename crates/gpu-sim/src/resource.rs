//! The FLBooster resource manager (paper Sec. IV-A2).
//!
//! > "the resource manager stores the common block sizes and adjusts the
//! > block size by allocating the corresponding thread numbers in stream
//! > multiprocessors (SMs) according to the number of tasks, fully using
//! > the resources in the thread pool. ... Besides, the resource manager
//! > allocates an appropriate number of registers and memory size used by
//! > each thread based on tasks ... the resource manager can improve
//! > performance by combining branch issues or executing the branch code
//! > as a warp."
//!
//! Given a kernel's per-thread resource demands and a task count, the
//! manager picks the block size (from its table of common sizes) that
//! maximizes SM occupancy and minimizes tail waves, applies the branch
//! policy to the register demand, and emits a [`LaunchPlan`] the device
//! executes and accounts.

use crate::config::DeviceConfig;
use crate::kernel::KernelSpec;

/// Which per-SM resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Thread slots per SM.
    Threads,
    /// Register file size.
    Registers,
    /// Shared-memory capacity.
    SharedMem,
    /// Hardware resident-block limit.
    Blocks,
}

/// The grid and occupancy decision for one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchPlan {
    /// Threads per block chosen from the common-size table.
    pub threads_per_block: u32,
    /// Number of blocks in the grid.
    pub num_blocks: u32,
    /// Total threads requested by the launch (items × lanes).
    pub total_threads: u64,
    /// Blocks co-resident on one SM under the binding resource limit.
    pub blocks_per_sm: u32,
    /// Resident threads per SM (`blocks_per_sm × threads_per_block`).
    pub resident_threads_per_sm: u32,
    /// Occupancy: resident threads / max threads per SM.
    pub occupancy: f64,
    /// Register demand per thread after the branch policy was applied.
    pub effective_registers_per_thread: u32,
    /// The resource that bounded `blocks_per_sm`.
    pub limited_by: OccupancyLimit,
    /// Number of sequential waves needed to drain the grid.
    pub waves: u32,
}

impl LaunchPlan {
    /// Threads executing concurrently across the whole device.
    pub fn concurrent_threads(&self, cfg: &DeviceConfig) -> u64 {
        (self.resident_threads_per_sm as u64 * cfg.num_sms as u64).min(self.total_threads)
    }
}

/// Block-size selection policy.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockPolicy {
    /// Search the common-size table for the best occupancy (FLBooster).
    Adaptive(Vec<u32>),
    /// Always use one size (the ablation baseline).
    Fixed(u32),
}

/// The resource manager.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    policy: BlockPolicy,
    /// Whether divergent branches are combined/warp-executed instead of
    /// letting the warp split (which multiplies register demand).
    branch_combining: bool,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Register-demand multiplier when a split warp must hold both branch
/// arms live ("double or even several times the number of registers").
const WARP_SPLIT_REGISTER_FACTOR: u32 = 2;

impl ResourceManager {
    /// FLBooster's manager: adaptive block sizing + branch combining.
    pub fn new() -> Self {
        ResourceManager {
            policy: BlockPolicy::Adaptive(vec![32, 64, 128, 256, 512, 1024]),
            branch_combining: true,
        }
    }

    /// Ablation variant: a fixed block size and no branch handling —
    /// what a naive GPU port (HAFLO-style) would do.
    pub fn fixed(block_size: u32) -> Self {
        // Documented precondition mirroring the CUDA launch constraint.
        // flcheck: allow(pf-assert)
        assert!(
            block_size > 0 && block_size % 32 == 0,
            "block must be whole warps"
        );
        ResourceManager {
            policy: BlockPolicy::Fixed(block_size),
            branch_combining: false,
        }
    }

    /// Disables branch combining on an otherwise adaptive manager.
    pub fn without_branch_combining(mut self) -> Self {
        self.branch_combining = false;
        self
    }

    /// Whether branch combining is active.
    pub fn branch_combining(&self) -> bool {
        self.branch_combining
    }

    /// Plans a launch of `items` work items of `spec` on `cfg`.
    pub fn plan(&self, cfg: &DeviceConfig, spec: &KernelSpec, items: usize) -> LaunchPlan {
        let total_threads = (items as u64).max(1) * spec.lanes_per_item.max(1) as u64;
        let effective_regs = self.effective_registers(cfg, spec);

        match &self.policy {
            BlockPolicy::Fixed(size) => {
                self.plan_with_block(cfg, spec, total_threads, *size, effective_regs)
            }
            BlockPolicy::Adaptive(sizes) => {
                // Pick the candidate maximizing occupancy; tie-break on
                // fewer waves (less tail underfill), then smaller blocks
                // (finer-grained balancing across SMs).
                let mut best: Option<LaunchPlan> = None;
                let lanes = spec.lanes_per_item.max(1);
                for &size in sizes {
                    // A block must host whole items (size >= lanes) or an
                    // item must span whole blocks (lanes % size == 0);
                    // otherwise items would straddle block boundaries.
                    if size < lanes && lanes % size != 0 {
                        continue;
                    }
                    // Skip block sizes whose register demand cannot host
                    // even one resident block: those spill to local memory
                    // and a competent manager avoids them.
                    if (effective_regs as u64) * (size as u64) > cfg.registers_per_sm as u64 {
                        continue;
                    }
                    let cand = self.plan_with_block(cfg, spec, total_threads, size, effective_regs);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            (
                                cand.occupancy,
                                -(cand.waves as i64),
                                -(cand.threads_per_block as i64),
                            ) > (
                                b.occupancy,
                                -(b.waves as i64),
                                -(b.threads_per_block as i64),
                            )
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                best.unwrap_or_else(|| {
                    // No table entry worked (e.g. very wide items): use the
                    // lane count rounded up to whole warps.
                    let block = lanes
                        .div_ceil(cfg.warp_size)
                        .saturating_mul(cfg.warp_size)
                        .min(cfg.max_threads_per_sm);
                    self.plan_with_block(cfg, spec, total_threads, block, effective_regs)
                })
            }
        }
    }

    /// Register demand after the branch policy: a divergent kernel whose
    /// warps the manager does not recombine needs registers for both
    /// branch arms.
    fn effective_registers(&self, cfg: &DeviceConfig, spec: &KernelSpec) -> u32 {
        let base = spec.registers_per_thread.max(1);
        let regs = if spec.divergence > 0.0 && !self.branch_combining {
            base.saturating_mul(WARP_SPLIT_REGISTER_FACTOR)
        } else {
            base
        };
        regs.min(cfg.max_registers_per_thread)
    }

    fn plan_with_block(
        &self,
        cfg: &DeviceConfig,
        spec: &KernelSpec,
        total_threads: u64,
        threads_per_block: u32,
        effective_regs: u32,
    ) -> LaunchPlan {
        let tpb = threads_per_block.min(cfg.max_threads_per_sm);
        let num_blocks = total_threads.div_ceil(tpb as u64) as u32;

        let by_threads = cfg.max_threads_per_sm / tpb;
        let by_regs = cfg.registers_per_sm / (effective_regs * tpb).max(1);
        let by_smem = if spec.shared_mem_per_block == 0 {
            u32::MAX
        } else {
            cfg.shared_mem_per_sm / spec.shared_mem_per_block
        };
        let by_blocks = cfg.max_blocks_per_sm;

        let (blocks_per_sm, limited_by) = [
            (by_threads, OccupancyLimit::Threads),
            (by_regs, OccupancyLimit::Registers),
            (by_smem, OccupancyLimit::SharedMem),
            (by_blocks, OccupancyLimit::Blocks),
        ]
        .into_iter()
        .min_by_key(|&(v, _)| v)
        .unwrap_or((by_blocks, OccupancyLimit::Blocks));

        // At least one block is always resident: a real device spills
        // registers to local memory rather than refusing the launch, but a
        // spilled block delivers far fewer useful cycles — penalize its
        // effective occupancy quadratically in the register deficit.
        let blocks_per_sm = blocks_per_sm.min(by_blocks).max(1);
        let resident = blocks_per_sm * tpb;
        let reg_fit =
            (cfg.registers_per_sm as f64 / (effective_regs as f64 * resident as f64)).min(1.0);
        let occupancy = resident as f64 / cfg.max_threads_per_sm as f64 * reg_fit * reg_fit;
        let device_resident = (blocks_per_sm.max(1) as u64) * cfg.num_sms as u64;
        let waves = (num_blocks as u64).div_ceil(device_resident) as u32;

        LaunchPlan {
            threads_per_block: tpb,
            num_blocks,
            total_threads,
            blocks_per_sm,
            resident_threads_per_sm: resident,
            occupancy,
            effective_registers_per_thread: effective_regs,
            limited_by,
            waves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(lanes: u32, regs: u32) -> KernelSpec {
        KernelSpec {
            name: "test",
            lanes_per_item: lanes,
            registers_per_thread: regs,
            shared_mem_per_block: 0,
            divergence: 0.0,
        }
    }

    #[test]
    fn small_register_kernel_is_thread_limited() {
        let cfg = DeviceConfig::rtx3090();
        let rm = ResourceManager::new();
        let p = rm.plan(&cfg, &spec(1, 16), 1_000_000);
        assert_eq!(p.limited_by, OccupancyLimit::Threads);
        assert!(
            (p.occupancy - 1.0).abs() < 1e-9,
            "occupancy {}",
            p.occupancy
        );
    }

    #[test]
    fn heavy_register_kernel_is_register_limited() {
        let cfg = DeviceConfig::rtx3090();
        let rm = ResourceManager::new();
        // 255 regs/thread: 65536/255 ≈ 257 threads/SM max.
        let p = rm.plan(&cfg, &spec(1, 255), 1_000_000);
        assert_eq!(p.limited_by, OccupancyLimit::Registers);
        assert!(p.occupancy < 0.25, "occupancy {}", p.occupancy);
    }

    #[test]
    fn occupancy_falls_as_registers_grow() {
        // The Fig.-6 mechanism: more registers per thread (bigger key)
        // => fewer resident threads => lower occupancy.
        let cfg = DeviceConfig::rtx3090();
        let rm = ResourceManager::new();
        let occ: Vec<f64> = [32u32, 64, 128, 255]
            .iter()
            .map(|&r| rm.plan(&cfg, &spec(1, r), 100_000).occupancy)
            .collect();
        for w in occ.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "occupancy not monotone: {occ:?}");
        }
        assert!(occ[3] < occ[0]);
    }

    #[test]
    fn adaptive_beats_or_matches_fixed() {
        let cfg = DeviceConfig::rtx3090();
        let s = spec(4, 96);
        let adaptive = ResourceManager::new().plan(&cfg, &s, 50_000);
        for fixed_size in [32u32, 128, 1024] {
            let fixed = ResourceManager::fixed(fixed_size).plan(&cfg, &s, 50_000);
            assert!(
                adaptive.occupancy >= fixed.occupancy - 1e-12,
                "adaptive {} < fixed({fixed_size}) {}",
                adaptive.occupancy,
                fixed.occupancy
            );
        }
    }

    #[test]
    fn branch_splitting_doubles_registers_without_combining() {
        let cfg = DeviceConfig::rtx3090();
        let mut s = spec(1, 64);
        s.divergence = 0.3;
        let with = ResourceManager::new().plan(&cfg, &s, 1000);
        let without = ResourceManager::new()
            .without_branch_combining()
            .plan(&cfg, &s, 1000);
        assert_eq!(with.effective_registers_per_thread, 64);
        assert_eq!(without.effective_registers_per_thread, 128);
        assert!(without.occupancy <= with.occupancy);
    }

    #[test]
    fn waves_cover_all_blocks() {
        let cfg = DeviceConfig::test_tiny();
        let rm = ResourceManager::new();
        let p = rm.plan(&cfg, &spec(1, 8), 10_000);
        let device_blocks = p.blocks_per_sm as u64 * cfg.num_sms as u64;
        assert!(p.waves as u64 * device_blocks >= p.num_blocks as u64);
        assert!((p.waves as u64 - 1) * device_blocks < p.num_blocks as u64);
    }

    #[test]
    fn lanes_do_not_straddle_blocks() {
        let cfg = DeviceConfig::rtx3090();
        let rm = ResourceManager::new();
        // 48 lanes per item: blocks must host whole items or items must
        // span whole blocks.
        let p = rm.plan(&cfg, &spec(48, 32), 100);
        assert!(
            p.threads_per_block >= 48 || 48 % p.threads_per_block == 0,
            "block {} incompatible with 48 lanes",
            p.threads_per_block
        );
    }

    #[test]
    fn zero_items_still_plans_one_thread() {
        let cfg = DeviceConfig::test_tiny();
        let p = ResourceManager::new().plan(&cfg, &spec(1, 8), 0);
        assert_eq!(p.total_threads, 1);
        assert!(p.num_blocks >= 1);
    }

    #[test]
    #[should_panic(expected = "whole warps")]
    fn fixed_block_must_be_warp_multiple() {
        ResourceManager::fixed(100);
    }
}
