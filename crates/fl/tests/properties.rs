//! Property-based tests for the FL substrate: partitioning conservation,
//! secure aggregation correctness, and network-model monotonicity.

use fl::data::generators::DatasetSpec;
use fl::data::{horizontal_split, vertical_split, Dataset, SparseRow};
use fl::{Accelerator, BackendKind, Network, NetworkConfig};
use he::paillier::PaillierKeyPair;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

fn keys() -> &'static PaillierKeyPair {
    static KEYS: OnceLock<PaillierKeyPair> = OnceLock::new();
    KEYS.get_or_init(|| {
        PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(0xF1), 128).unwrap()
    })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (4usize..64, 8usize..60, any::<u64>()).prop_map(|(features, instances, seed)| {
        let mut spec = DatasetSpec::rcv1();
        spec.features = features;
        spec.nnz_per_row = (features / 2).max(1);
        spec.instances = instances;
        spec.seed = seed;
        spec.generate(1.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn horizontal_split_conserves_everything(data in arb_dataset(), parts in 1u32..8) {
        let split = horizontal_split(&data, parts);
        prop_assert_eq!(split.len(), parts as usize);
        let total: usize = split.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, data.len());
        let label_sum: f64 = data.labels.iter().sum();
        let split_sum: f64 = split.iter().flat_map(|p| p.labels.iter()).sum();
        prop_assert!((label_sum - split_sum).abs() < 1e-9);
        let sizes: Vec<usize> = split.iter().map(|p| p.len()).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn vertical_split_partitions_features(data in arb_dataset(), parts in 1u32..4) {
        prop_assume!(data.num_features >= parts as usize);
        let shards = vertical_split(&data, parts);
        // Ranges tile [0, num_features).
        prop_assert_eq!(shards[0].feature_range.0, 0);
        prop_assert_eq!(shards.last().unwrap().feature_range.1 as usize, data.num_features);
        // Reassembling rows from shards reproduces the originals.
        for (i, row) in data.rows.iter().enumerate() {
            let mut rebuilt: Vec<(u32, f64)> = Vec::new();
            for shard in &shards {
                let (lo, _) = shard.feature_range;
                for (j, &idx) in shard.rows[i].indices.iter().enumerate() {
                    rebuilt.push((idx + lo, shard.rows[i].values[j]));
                }
            }
            let original: Vec<(u32, f64)> =
                row.indices.iter().copied().zip(row.values.iter().copied()).collect();
            prop_assert_eq!(rebuilt, original, "row {} not conserved", i);
        }
    }

    #[test]
    fn sparse_dot_matches_dense(indices in proptest::collection::btree_set(0u32..64, 0..20),
                                 seed in any::<u64>()) {
        let indices: Vec<u32> = indices.into_iter().collect();
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let values: Vec<f64> = indices.iter().map(|_| next()).collect();
        let weights: Vec<f64> = (0..64).map(|_| next()).collect();
        let row = SparseRow::new(indices.clone(), values.clone());
        let mut dense = vec![0.0; 64];
        for (&i, &v) in indices.iter().zip(&values) {
            dense[i as usize] = v;
        }
        let expected: f64 = dense.iter().zip(&weights).map(|(a, b)| a * b).sum();
        prop_assert!((row.dot(&weights) - expected).abs() < 1e-9);
    }

    #[test]
    fn secure_sum_is_correct_for_any_party_count(
        values in proptest::collection::vec(-0.9f64..0.9, 1..40),
        parties in 1usize..4,
    ) {
        let acc = Accelerator::new(BackendKind::FlBooster, keys().clone(), 4).unwrap();
        prop_assume!(parties <= 4);
        let vectors: Vec<Vec<f64>> = (0..parties)
            .map(|k| values.iter().map(|v| v * (k as f64 + 1.0) / parties as f64).collect())
            .collect();
        let sums = acc.secure_sum(&vectors, 99).unwrap();
        let bound = parties as f64 * acc.codec().quantizer().max_error() + 1e-12;
        for (i, s) in sums.iter().enumerate() {
            let expected: f64 = vectors.iter().map(|v| v[i]).sum();
            prop_assert!((s - expected).abs() <= bound, "component {}: {} vs {}", i, s, expected);
        }
    }

    #[test]
    fn network_time_is_monotone(cts in 0u64..1000, bytes in 0u64..1_000_000, extra in 1u64..100) {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let base = net.send(cts, bytes).unwrap();
        let more_cts = net.send(cts + extra, bytes).unwrap();
        let more_bytes = net.send(cts, bytes + extra * 1000).unwrap();
        prop_assert!(more_cts > base);
        prop_assert!(more_bytes > base);
    }
}

proptest! {
    // HE-heavy cases: fewer iterations, each covering a random cell of
    // the shards × arity matrix.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded and tree aggregation must decrypt to exactly what the
    /// naive per-party scalar-mul + add loop decrypts to, for every
    /// shard count, tree arity, and both decryption paths.
    #[test]
    fn sharded_and_tree_aggregation_decrypt_like_the_naive_loop(
        parties in 2usize..10,
        slots in 1usize..4,
        shard_sel in 0usize..4,
        arity_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        const SHARDS: [usize; 4] = [1, 2, 3, 7];
        const ARITIES: [usize; 3] = [2, 4, 16];
        let k = keys();
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Party batches of raw HE ciphertexts with deterministic
        // blinding, plus small weights so the plaintext sum is checkable
        // in u64 arithmetic.
        let plain: Vec<Vec<u64>> = (0..parties)
            .map(|_| (0..slots).map(|_| next() % (1 << 16)).collect())
            .collect();
        let weights: Vec<u64> = (0..parties).map(|_| next() % (1 << 10) + 1).collect();
        let batches: Vec<Vec<he::paillier::Ciphertext>> = plain
            .iter()
            .enumerate()
            .map(|(p, ms)| {
                ms.iter()
                    .enumerate()
                    .map(|(j, &m)| {
                        let r = k.public.batch_blinding(seed ^ p as u64, j);
                        k.public.encrypt_with_r(&mpint::Natural::from(m), &r).unwrap()
                    })
                    .collect()
            })
            .collect();
        let wnat: Vec<mpint::Natural> =
            weights.iter().map(|&w| mpint::Natural::from(w)).collect();

        for j in 0..slots {
            // Naive reference: per-party scalar_mul then a serial add.
            let mut naive = k.public.zero_ciphertext();
            for p in 0..parties {
                let scaled = k.public.checked_scalar_mul(&batches[p][j], &wnat[p]).unwrap();
                naive = k.public.checked_add(&naive, &scaled).unwrap();
            }
            let expected: u64 = (0..parties).map(|p| weights[p] * plain[p][j]).sum();
            prop_assert_eq!(k.private.decrypt(&naive).unwrap(), mpint::Natural::from(expected));

            // Sharded server fold: same ciphertext, hence same plaintext
            // under both decryption paths.
            let column: Vec<he::paillier::Ciphertext> =
                (0..parties).map(|p| batches[p][j].clone()).collect();
            let sharded = k.public
                .weighted_sum_sharded(&column, &wnat, SHARDS[shard_sel])
                .unwrap();
            prop_assert_eq!(&sharded, &naive);
            prop_assert_eq!(k.private.decrypt(&sharded).unwrap(), mpint::Natural::from(expected));
            prop_assert_eq!(k.private.decrypt_crt(&sharded).unwrap(), mpint::Natural::from(expected));
        }

        // Tree-of-edge-aggregators route at the Accelerator layer.
        let vectors: Vec<fl::backend::EncryptedVector> = batches
            .iter()
            .map(|cts| fl::backend::EncryptedVector { cts: cts.clone(), count: slots })
            .collect();
        let tree = Accelerator::new(BackendKind::Fate, k.clone(), 4)
            .unwrap()
            .with_topology(fl::AggregationTopology::tree(ARITIES[arity_sel]))
            .with_aggregation_shards(SHARDS[shard_sel]);
        let agg = tree.aggregate_weighted(&vectors, &weights).unwrap();
        for (j, ct) in agg.cts.iter().enumerate() {
            let expected: u64 = (0..parties).map(|p| weights[p] * plain[p][j]).sum();
            prop_assert_eq!(k.private.decrypt(ct).unwrap(), mpint::Natural::from(expected));
            prop_assert_eq!(k.private.decrypt_crt(ct).unwrap(), mpint::Natural::from(expected));
        }
    }
}
