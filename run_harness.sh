#!/bin/bash
# Final harness sequence: every table and figure, laptop-scaled.
#
# `./run_harness.sh --quick` keeps every gate (build, each experiment
# binary, both bench gates, both tier-1 test runs, flcheck, fmt) but
# trims sweep cardinality — fewer key sizes, datasets, models, epochs,
# and bench iterations — for a fast full-pipeline smoke run.
set -o pipefail
cd /root/repo
R=results
mkdir -p $R

QUICK=0
if [ "$1" = "--quick" ]; then
  QUICK=1
  echo "=== quick tier: every gate, trimmed sweeps ==="
fi

# Build gate: the whole workspace must compile with warnings as errors
# before any benchmark binary runs. `--workspace` matters: the root
# manifest is a package too, so a bare `cargo build` would compile only
# it and leave the experiment binaries stale (or absent on a clean
# checkout).
echo "=== build: RUSTFLAGS=-D warnings ==="
if ! RUSTFLAGS="-D warnings" cargo build --workspace --release 2>&1 | tail -20; then
  echo "HARNESS_FAILED: release build with -D warnings"
  exit 1
fi

run() {
  name=$1; shift
  echo "=== $name: $* ===" 
  ( ./target/release/$name "$@" 2>&1 ) | tee $R/$name.txt
  echo
}
if [ "$QUICK" -eq 1 ]; then
  T5_DATASETS=rcv1
  T7_ARGS="--epochs 1 --models homo-lr --datasets rcv1"
  F8_ARGS="--epochs 2 --models homo-lr"
  BP_ITEMS=128
  BA_ARGS="--quick"
  BR_ARGS="--quick"
else
  T5_DATASETS=rcv1,synthetic
  T7_ARGS="--epochs 2 --models homo-lr,hetero-sbt --datasets rcv1,synthetic"
  F8_ARGS="--epochs 3 --models homo-lr,hetero-nn"
  BP_ITEMS=256
  BA_ARGS=""
  BR_ARGS=""
fi

run fig1_fate_breakdown --quick
run table6_components --quick
run fig6_sm_utilization
run fig7_compression --quick
run table4_throughput --quick --keys 1024
run table3_epoch_time --quick --keys 1024
if [ "$QUICK" -eq 0 ]; then
  # Second sweep point (2048-bit keys) — cardinality, not a distinct gate.
  run table3_epoch_time --quick --keys 2048 --models homo-lr --datasets rcv1
fi
run table5_ablation --quick --keys 1024 --datasets $T5_DATASETS
run table7_bias --quick $T7_ARGS
run fig8_convergence --quick $F8_ARGS
run ablation_quantization --quick

# Parallel-efficiency gate: wall-clock per thread count plus the
# bit-identical-output check, recorded in results/bench_summary.json.
run bench_parallel --items $BP_ITEMS --keys 1024

# Hot-path kernel gate: before→after ops/sec and limb-mult counts for
# the squaring kernel, the blinding pool, and Straus aggregation
# (results/BENCH_hotpath.json). The binary exits non-zero if the
# 1024-bit measured speedups fall under their floors (encrypt 1.3x,
# aggregate 1.2x) or if the after limb-mult counts for encrypt or
# aggregate exceed results/bench_hotpath_baseline.json by more than 5%.
echo "=== bench_hotpath: hot-path kernel gates ==="
if ! ./target/release/bench_hotpath 2>&1 | tee $R/bench_hotpath.txt; then
  echo "HARNESS_FAILED: bench_hotpath regression gate"
  exit 1
fi
echo

# Cost-model calibration gate: recorded hot-path MAC counters must match
# the live analytic estimators, and the DESIGN §8 constants (beta_cpu,
# GPU sec_per_thread_op) must re-fit within 10% of the paper's Table-IV
# anchors (results/CALIBRATE_cost.json). Runs after bench_hotpath so the
# counters it validates are fresh.
echo "=== calibrate_cost: cost-model drift gate ==="
if ! ./target/release/calibrate_cost 2>&1 | tee $R/calibrate_cost.txt; then
  echo "HARNESS_FAILED: calibrate_cost drift gate"
  exit 1
fi
echo

# Sharded-aggregation gate: throughput vs shard count at fixed memory and
# flat-vs-tree topology comparison (results/BENCH_aggregate.json). The
# binary exits non-zero unless sharded and tree results are bit-identical
# to the flat fold, modeled scaling at 4 shards clears 1.5x, the 1-shard
# estimate equals the flat estimate exactly, and 1-shard wall throughput
# stays within the no-regression band of the flat kernel.
echo "=== bench_aggregate: sharded aggregation gates ==="
if ! ./target/release/bench_aggregate $BA_ARGS 2>&1 | tee $R/bench_aggregate.txt; then
  echo "HARNESS_FAILED: bench_aggregate gate"
  exit 1
fi
echo

# Round-engine gate: event-driven pipelined rounds vs the sequential
# loop over the same parties (results/BENCH_rounds.json). The binary
# exits non-zero unless the pipelined round's decrypted sums are
# bit-identical to the sequential round's and the modeled round-time
# reduction clears 1.5x at every swept client count (all >= 64).
echo "=== bench_rounds: round-engine pipelining gates ==="
if ! ./target/release/bench_rounds $BR_ARGS 2>&1 | tee $R/bench_rounds.txt; then
  echo "HARNESS_FAILED: bench_rounds gate"
  exit 1
fi
echo

# Thread-count invariance gate: the tier-1 test suite must pass both
# pinned to one worker and at the host's full width (the pool reads
# RAYON_NUM_THREADS at first use).
echo "=== tier-1 tests: RAYON_NUM_THREADS=1 ==="
if ! RAYON_NUM_THREADS=1 cargo test -q --release 2>&1 | tail -40; then
  echo "HARNESS_FAILED: tests under RAYON_NUM_THREADS=1"
  exit 1
fi
echo "=== tier-1 tests: unbounded pool ==="
if ! cargo test -q --release 2>&1 | tail -40; then
  echo "HARNESS_FAILED: tests under unbounded pool"
  exit 1
fi

# Static-analysis gate: the tree must be clean under flcheck and rustfmt.
# Single source of truth: the schema-6 JSON summary enumerates every rule
# with an explicit count, so the gate loops over total plus each rule id
# and fails if any count is missing (schema drift / crash / unwritable
# report) or non-zero. The rule list comes from the binary itself
# (`flcheck --rules` prints report::ALL_RULES one per line), so adding a
# pass without a gate is impossible: a new rule id appears here
# automatically, and a rule missing from the summary fails the loop.
echo "=== flcheck: static analysis ==="
./target/release/flcheck --root . --json $R/flcheck_report.json | tee $R/flcheck.txt
fl_status=${PIPESTATUS[0]}
fl_rules="total $(./target/release/flcheck --rules)"
fl_bad=0
echo "--- flcheck summary by rule ---"
for rule in $fl_rules; do
  count=$(grep -o "\"$rule\": *[0-9]*" $R/flcheck_report.json 2>/dev/null \
    | head -1 | grep -o '[0-9]*$')
  if [ -z "$count" ]; then
    echo "  $rule: MISSING from summary"
    fl_bad=1
  elif [ "$count" -gt 0 ]; then
    echo "  $rule: $count"
    fl_bad=1
  fi
done
[ "$fl_bad" -eq 0 ] && echo "  (all rules at zero)"
if [ "$fl_status" -ne 0 ] || [ "$fl_bad" -ne 0 ]; then
  echo "HARNESS_FAILED: flcheck gate (exit $fl_status)"
  exit 1
fi

# Deliberate-finding smoke check: prove the unit-flow rules can fire at
# all — a pass that silently returned zero findings would keep the gate
# above green forever. The committed fixture is scanned from a scratch
# root so its synthetic `crates/fl/src/engine.rs` path anchors
# charge-unphased exactly as the real round engine would.
echo "=== flcheck: unit-flow smoke check (deliberate findings) ==="
SMOKE=target/unit_smoke
rm -rf $SMOKE
mkdir -p $SMOKE/crates/fl/src
cp crates/flcheck/tests/fixtures/unit_violations.rs $SMOKE/crates/fl/src/engine.rs
if ./target/release/flcheck --root $SMOKE > $R/unit_smoke.txt 2>&1; then
  echo "HARNESS_FAILED: unit-flow smoke check (flcheck exited 0 on a violating tree)"
  cat $R/unit_smoke.txt
  exit 1
fi
for rule in unit-mismatch unit-unconverted charge-unphased; do
  if ! grep -q "\[$rule\]" $R/unit_smoke.txt; then
    echo "HARNESS_FAILED: unit-flow smoke check (no $rule finding)"
    cat $R/unit_smoke.txt
    exit 1
  fi
done
echo "  (all three unit-flow rules fired on the fixture)"
rm -rf $SMOKE

# Analyzer self-benchmark: files/sec and per-pass wall-clock
# (results/BENCH_flcheck.json). The binary exits non-zero if measured
# files/sec falls under 0.4x the committed
# results/bench_flcheck_baseline.json — a wide band that still catches
# an accidentally quadratic pass.
echo "=== bench_flcheck: analyzer self-benchmark + throughput gate ==="
if ! ./target/release/bench_flcheck --iters 3 2>&1 | tee $R/bench_flcheck.txt; then
  echo "HARNESS_FAILED: bench_flcheck throughput gate"
  exit 1
fi
echo
echo "=== cargo fmt --check ==="
if ! cargo fmt --check; then
  echo "HARNESS_FAILED: cargo fmt --check"
  exit 1
fi
echo "HARNESS_ALL_DONE"
