//! Limb-level primitives.
//!
//! A *limb* is one machine word of a multi-precision integer. The paper
//! (Sec. IV-A1) uses base `2^w` with `w = 32` on 32-bit systems and
//! `w = 64` on 64-bit systems; we fix `w = 64`. All multi-precision
//! algorithms in this crate are expressed in terms of the carry/borrow
//! primitives defined here, which mirror the `(C, S) <- ...` steps of the
//! paper's Algorithms 1 and 2.

/// One word of a multi-precision integer (the paper's base-`2^w` digit).
pub type Limb = u64;

/// A double-width intermediate used for limb products.
pub type DoubleLimb = u128;

/// Number of bits per limb (`w` in the paper).
pub const LIMB_BITS: u32 = Limb::BITS;

/// Number of bytes per limb.
pub const LIMB_BYTES: usize = (LIMB_BITS as usize) / 8;

/// Adds `a + b + carry`, returning `(sum, carry_out)`.
///
/// This is the `(C, S) <- a + b + C` primitive of Algorithm 2; `carry_out`
/// is always 0 or 1.
// flcheck: ct-fn
#[inline(always)]
pub fn adc(a: Limb, b: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb + b as DoubleLimb + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Subtracts `a - b - borrow`, returning `(diff, borrow_out)`.
///
/// `borrow_out` is always 0 or 1.
// flcheck: ct-fn
#[inline(always)]
pub fn sbb(a: Limb, b: Limb, borrow: Limb) -> (Limb, Limb) {
    let t = (a as DoubleLimb)
        .wrapping_sub(b as DoubleLimb)
        .wrapping_sub(borrow as DoubleLimb);
    (t as Limb, ((t >> LIMB_BITS) as Limb) & 1)
}

/// Computes `a * b + c + carry`, returning `(low, high)`.
///
/// The result never overflows: `(2^w-1)^2 + 2*(2^w-1) = 2^{2w} - 1`.
/// This is the inner-product step `(C, S) <- t[k] + a[k]*b_i[j] + C` of
/// Algorithm 2.
// flcheck: ct-fn
#[inline(always)]
pub fn mac(a: Limb, b: Limb, c: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb * b as DoubleLimb + c as DoubleLimb + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Full `w x w -> 2w` multiplication, returning `(low, high)`.
// flcheck: ct-fn
#[inline(always)]
pub fn mul_wide(a: Limb, b: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb * b as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Divides the double-limb `(high, low)` by `divisor`, returning
/// `(quotient, remainder)`.
///
/// # Panics
///
/// Panics in debug builds if `high >= divisor` (the quotient would not fit
/// in a single limb); callers must pre-normalize as Knuth's Algorithm D
/// does.
#[inline(always)]
pub fn div2by1(high: Limb, low: Limb, divisor: Limb) -> (Limb, Limb) {
    debug_assert!(high < divisor, "2-by-1 division quotient overflow");
    let n = ((high as DoubleLimb) << LIMB_BITS) | low as DoubleLimb;
    (
        (n / divisor as DoubleLimb) as Limb,
        (n % divisor as DoubleLimb) as Limb,
    )
}

/// Computes `-n^{-1} mod 2^w` for odd `n`.
///
/// This is the `n'_0 = -n_0[0] mod 2^w` pre-computation required by
/// Montgomery multiplication (Algorithms 1 and 2). Uses Newton–Hensel
/// lifting: each iteration doubles the number of correct low-order bits.
///
/// # Panics
///
/// Panics if `n` is even (no inverse exists modulo a power of two).
#[inline]
pub fn mont_neg_inv(n: Limb) -> Limb {
    // Documented panic: no inverse exists modulo a power of two.
    // flcheck: allow(pf-assert)
    assert!(n & 1 == 1, "Montgomery modulus must be odd");
    // Start with a 5-bit-correct seed: n * n ≡ 1 (mod 2^5) wants inv = n
    // for odd n modulo 2^3 already; standard trick uses inv = n which is
    // correct mod 2^3, then 5 lifts reach 2^96 > 2^64.
    let mut inv: Limb = n; // correct mod 2^3
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(inv)));
    }
    debug_assert_eq!(n.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(Limb::MAX, 1, 0), (0, 1));
        assert_eq!(adc(Limb::MAX, Limb::MAX, 1), (Limb::MAX, 1));
        assert_eq!(adc(1, 2, 1), (4, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (Limb::MAX, 1));
        assert_eq!(sbb(0, Limb::MAX, 1), (0, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
    }

    #[test]
    fn mac_never_overflows() {
        // (2^64-1)^2 + (2^64-1) + (2^64-1) == 2^128 - 1 exactly
        let (lo, hi) = mac(Limb::MAX, Limb::MAX, Limb::MAX, Limb::MAX);
        assert_eq!(lo, Limb::MAX);
        assert_eq!(hi, Limb::MAX);
    }

    #[test]
    fn mul_wide_basic() {
        assert_eq!(mul_wide(0, 12345), (0, 0));
        assert_eq!(mul_wide(1 << 32, 1 << 32), (0, 1));
        let (lo, hi) = mul_wide(Limb::MAX, 2);
        assert_eq!(lo, Limb::MAX - 1);
        assert_eq!(hi, 1);
    }

    #[test]
    fn div2by1_roundtrip() {
        let (q, r) = div2by1(3, 42, 7);
        let n = ((3u128) << 64) | 42;
        assert_eq!(q as u128, n / 7);
        assert_eq!(r as u128, n % 7);
    }

    #[test]
    fn mont_neg_inv_is_negative_inverse() {
        for n in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5679, 999_999_937] {
            let ninv = mont_neg_inv(n);
            assert_eq!(n.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn mont_neg_inv_rejects_even() {
        mont_neg_inv(4);
    }
}
