//! **Figure 1**: running time per epoch when FATE trains the four
//! standard FL models at 1024-bit keys, broken into HE operations,
//! communication, and others.
//!
//! The paper's observation to reproduce: HE takes more than 50% of an
//! epoch and communication more than 40%, for every model.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin fig1_fate_breakdown [--quick] [--dataset rcv1]
//! ```

use fl::train::FlEnv;
use fl::BackendKind;
use flbooster_bench::table::{pct, secs, Table};
use flbooster_bench::{
    backend, bench_dataset, harness_train_config, Args, DatasetKind, ModelKind, PARTICIPANTS,
};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let key_bits = args.get("key").and_then(|s| s.parse().ok()).unwrap_or(1024);
    let dataset = match args.get("dataset") {
        Some("avazu") => DatasetKind::Avazu,
        Some("synthetic") => DatasetKind::Synthetic,
        _ => DatasetKind::Rcv1,
    };
    let cfg = harness_train_config();

    println!(
        "Figure 1 — FATE per-epoch time breakdown ({} @ {key_bits}-bit keys, {:?} preset)\n",
        dataset.name(),
        preset
    );
    let mut table = Table::new([
        "Model",
        "Epoch (sim s)",
        "Others",
        "HE ops",
        "Communication",
    ]);

    for model_kind in ModelKind::all() {
        let data = bench_dataset(dataset, preset);
        let env = FlEnv::new(backend(BackendKind::Fate, key_bits, PARTICIPANTS), cfg.seed);
        let mut model = model_kind
            .build(&data, PARTICIPANTS, &cfg)
            .expect("model build");
        let result = model.run_epoch(&env, &cfg, 0).expect("epoch");
        let b = result.breakdown;
        let (others, he, comm) = b.shares();
        table.row([
            model_kind.name().to_string(),
            secs(b.total_seconds()),
            pct(others),
            pct(he),
            pct(comm),
        ]);
    }
    table.print();
    println!("\nPaper reference: HE > 50% and communication > 40% of every epoch.");
}
