//! The acceleration systems under evaluation.
//!
//! Every experiment in the paper compares configurations of the same
//! pipeline — *who executes HE* (CPU vs GPU) and *whether batch
//! compression is applied*:
//!
//! | Backend     | HE engine                     | Batch compression | Transport |
//! |-------------|-------------------------------|-------------------|-----------|
//! | `Fate`      | CPU (serial per-value loop)   | no                | per-object serialization |
//! | `Haflo`     | GPU, fixed-block manager      | no                | per-object serialization |
//! | `FlBooster` | GPU, adaptive resource manager| yes               | batched binary framing |
//! | `WithoutGhe`| CPU                           | yes               | batched binary framing |
//! | `WithoutBc` | GPU, adaptive resource manager| no                | batched binary framing |
//!
//! `WithoutGhe` and `WithoutBc` are the Table-V ablations. All five run
//! the *same* cryptography on the *same* keys; only scheduling, packing,
//! and cost accounting differ, so loss trajectories are attributable to
//! quantization alone.

use std::sync::Arc;

use codec::{BatchCodec, QuantizerConfig};
use gpu_sim::{resource::ResourceManager, Device, DeviceConfig, DeviceStats};
use he::ghe::{CpuHe, GpuHe, HeTiming};
use he::paillier::{Ciphertext, ObfuscatorPool, PaillierKeyPair};
use he::HeBackend;
use mpint::Natural;
use parking_lot::Mutex;

use crate::net::NetworkConfig;
use crate::topology::AggregationTopology;
use crate::Result;

/// Which acceleration system a backend instance embodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// FATE baseline: CPU HE, no compression.
    Fate,
    /// HAFLO: GPU HE with a naive fixed launch configuration, no
    /// compression.
    Haflo,
    /// FLBooster: GPU HE with the resource manager plus batch compression.
    FlBooster,
    /// Ablation `w/o GHE`: FLBooster with HE forced back onto the CPU.
    WithoutGhe,
    /// Ablation `w/o BC`: FLBooster without batch compression.
    WithoutBc,
}

impl BackendKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Fate => "FATE",
            BackendKind::Haflo => "HAFLO",
            BackendKind::FlBooster => "FLBooster",
            BackendKind::WithoutGhe => "w/o GHE",
            BackendKind::WithoutBc => "w/o BC",
        }
    }

    /// The three headline systems of Tables III/IV/VI.
    pub fn headline() -> [BackendKind; 3] {
        [
            BackendKind::Fate,
            BackendKind::Haflo,
            BackendKind::FlBooster,
        ]
    }

    /// The ablation set of Table V.
    pub fn ablations() -> [BackendKind; 3] {
        [
            BackendKind::FlBooster,
            BackendKind::WithoutGhe,
            BackendKind::WithoutBc,
        ]
    }
}

/// An encrypted gradient vector in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedVector {
    /// Ciphertexts (packed words or one per value).
    pub cts: Vec<Ciphertext>,
    /// Number of gradient components carried.
    pub count: usize,
}

impl EncryptedVector {
    /// Wire bytes of the ciphertext payload.
    pub fn bytes(&self) -> u64 {
        self.cts.iter().map(|c| c.wire_size_bytes() as u64).sum()
    }

    /// Number of ciphertext objects (what per-object serialization
    /// charges).
    pub fn ciphertext_count(&self) -> u64 {
        self.cts.len() as u64
    }
}

/// Accumulated backend-side timing (simulated seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccelTiming {
    /// Simulated HE seconds.
    pub he_seconds: f64,
    /// Simulated encode/quantize/pack seconds.
    pub codec_seconds: f64,
    /// HE operations (ciphertext-level).
    pub he_items: u64,
    /// Limb-level operations.
    pub he_ops: u64,
}

/// Simulated cost of the per-value data conversion + encode/quantize/pack
/// step (paper Fig. 4 "data conversion"/"data processing"): dominated by
/// the float↔multi-precision boundary crossing, calibrated so FATE's
/// "Others" share lands near the paper's 0.1% and FLBooster's near 22%.
const CODEC_SECONDS_PER_VALUE: f64 = 5.0e-6;

/// One acceleration system: HE engine + packing policy + transport
/// profile.
pub struct Accelerator {
    kind: BackendKind,
    keys: PaillierKeyPair,
    codec: BatchCodec,
    he: Box<dyn HeBackend>,
    batch_compression: bool,
    device: Option<Arc<Device>>,
    net_profile: NetworkConfig,
    participants: u32,
    topology: AggregationTopology,
    /// Shards per server/edge Straus pass (1 = the flat single chain).
    agg_shards: usize,
    timing: Mutex<AccelTiming>,
    /// Blinding-factor pool for the FLBooster-family backends; the FATE
    /// and HAFLO baselines encrypt without pre-generation, as the
    /// systems they model do.
    pool: Option<Arc<ObfuscatorPool>>,
}

impl Accelerator {
    /// Builds a backend of `kind` around an existing key pair (all
    /// backends in one experiment share keys so ciphertexts are
    /// comparable).
    pub fn new(kind: BackendKind, keys: PaillierKeyPair, participants: u32) -> Result<Self> {
        Self::with_quantizer(
            kind,
            keys,
            participants,
            QuantizerConfig::paper_default(participants),
        )
    }

    /// Builds a backend with an explicit quantizer configuration.
    ///
    /// The convergence-bias experiment (paper Table VII) uses this to
    /// construct the "without compression techniques" reference: FATE's
    /// float encoding keeps the full 52-bit mantissa, modeled as an
    /// `r = 52`-bit quantizer whose error is at the f64 epsilon.
    pub fn with_quantizer(
        kind: BackendKind,
        keys: PaillierKeyPair,
        participants: u32,
        qcfg: QuantizerConfig,
    ) -> Result<Self> {
        let key_bits = keys.public.key_bits;
        let codec = BatchCodec::new(qcfg, key_bits).map_err(flbooster_core::Error::from)?;

        // Blinding-factor pre-generation is an FLBooster-family
        // optimization (and rides along in both ablations); the FATE and
        // HAFLO baselines pay the full `r^n` on every encryption.
        let pool = match kind {
            BackendKind::Fate | BackendKind::Haflo => None,
            BackendKind::FlBooster | BackendKind::WithoutGhe | BackendKind::WithoutBc => {
                Some(Arc::new(ObfuscatorPool::new(&keys.public)))
            }
        };

        let (he, device): (Box<dyn HeBackend>, Option<Arc<Device>>) = match kind {
            BackendKind::Fate => (Box::new(CpuHe::default()), None),
            BackendKind::WithoutGhe => {
                let mut cpu = CpuHe::default();
                if let Some(p) = &pool {
                    cpu = cpu.with_pool(Arc::clone(p));
                }
                (Box::new(cpu), None)
            }
            BackendKind::Haflo => {
                // Naive launch: fixed 256-thread blocks, no branch
                // combining — what a direct CUDA port does.
                let device = Arc::new(Device::with_manager(
                    DeviceConfig::rtx3090(),
                    ResourceManager::fixed(256),
                ));
                (Box::new(GpuHe::new(Arc::clone(&device))), Some(device))
            }
            BackendKind::FlBooster | BackendKind::WithoutBc => {
                let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
                let mut gpu = GpuHe::new(Arc::clone(&device));
                if let Some(p) = &pool {
                    gpu = gpu.with_pool(Arc::clone(p));
                }
                (Box::new(gpu), Some(device))
            }
        };

        let batch_compression = matches!(kind, BackendKind::FlBooster | BackendKind::WithoutGhe);
        let net_profile = match kind {
            BackendKind::Fate | BackendKind::Haflo => NetworkConfig::fate_profile(),
            _ => NetworkConfig::flbooster_profile(),
        };

        Ok(Accelerator {
            kind,
            keys,
            codec,
            he,
            batch_compression,
            device,
            net_profile,
            participants,
            topology: AggregationTopology::Flat,
            agg_shards: 1,
            timing: Mutex::new(AccelTiming::default()),
            pool,
        })
    }

    /// Routes aggregation through `topology` (default flat). Tree
    /// topologies fold party vectors at edge aggregators before the
    /// server; results stay bit-identical to the flat fold, only the
    /// charging (per-node device time, per-hop wire traffic) moves.
    pub fn with_topology(mut self, topology: AggregationTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Splits every weighted Straus fold into `shards` parallel chains
    /// merged by streaming homomorphic addition (default 1, the flat
    /// chain). Zero is treated as 1. Results are bit-identical at any
    /// shard count.
    pub fn with_aggregation_shards(mut self, shards: usize) -> Self {
        self.agg_shards = shards.max(1);
        self
    }

    /// The aggregation topology in effect.
    pub fn topology(&self) -> AggregationTopology {
        self.topology
    }

    /// Shards per weighted Straus fold.
    pub fn aggregation_shards(&self) -> usize {
        self.agg_shards
    }

    /// The backend's kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Key size in bits.
    pub fn key_bits(&self) -> u32 {
        self.keys.public.key_bits
    }

    /// The shared key pair.
    pub fn keys(&self) -> &PaillierKeyPair {
        &self.keys
    }

    /// Participants the quantizer was provisioned for.
    pub fn participants(&self) -> u32 {
        self.participants
    }

    /// The transport profile this backend's traffic should be charged
    /// under.
    pub fn network_profile(&self) -> NetworkConfig {
        self.net_profile
    }

    /// Whether batch compression is active.
    pub fn batch_compression(&self) -> bool {
        self.batch_compression
    }

    /// The batch codec (quantizer access for error bounds).
    pub fn codec(&self) -> &BatchCodec {
        &self.codec
    }

    /// Quantizes, packs (if enabled), and encrypts a gradient vector,
    /// charging the cost to the shared accumulator. Equivalent to
    /// [`Accelerator::encrypt_timed`] followed by
    /// [`Accelerator::charge_accel`].
    pub fn encrypt(&self, values: &[f64], seed: u64) -> Result<EncryptedVector> {
        let (ev, t) = self.encrypt_timed(values, seed)?;
        self.charge_accel(&t);
        Ok(ev)
    }

    /// Quantizes, packs (if enabled), and encrypts a gradient vector,
    /// returning this call's cost alongside the ciphertexts instead of
    /// charging the shared accumulator.
    ///
    /// The round engine needs the *per-client* cost to lay client
    /// encrypts out on its simulated timeline, and it runs client
    /// encrypts concurrently on the work-stealing pool — a take-timing
    /// dance around the shared [`Mutex`] accumulator would interleave
    /// clients. Callers must charge the returned timing themselves (the
    /// engine charges it to the epoch breakdown).
    // flcheck: secret(values)
    // flcheck: det-sink — EncryptedVector construction
    pub fn encrypt_timed(
        &self,
        values: &[f64],
        seed: u64,
    ) -> Result<(EncryptedVector, AccelTiming)> {
        let plaintexts: Vec<Natural> = if self.batch_compression {
            // Quantize-and-pack runs on the data owner's host before
            // encryption; its timing is visible only to the plaintext owner.
            // flcheck: allow(ct-taint)
            self.codec.pack(values)?
        } else {
            // Same owner-local boundary as the packed branch.
            // flcheck: allow(ct-taint)
            values
                .iter()
                .map(|&v| self.codec.quantizer().quantize(v).map(Natural::from))
                .collect::<codec::Result<_>>()?
        };
        // Pool presence is backend configuration, fixed at construction —
        // the branch does not depend on the gradient values.
        // flcheck: allow(ct-taint)
        if let Some(pool) = &self.pool {
            // Pre-generate the batch's (r, r^n) pairs sized to the
            // gradient vector. The pairs use the same deterministic r
            // derivation as the inline path, so ciphertexts are
            // unchanged; the r^n exponentiations are amortized background
            // work (the paper's pooling argument) and not charged to the
            // simulated epoch. Only the public batch *size* crosses into
            // the refill; the plaintext values do not.
            // flcheck: allow(ct-taint)
            pool.prefill_batch(&self.keys.public, seed, plaintexts.len())?;
        }
        let (cts, t) = self
            .he
            // Delegation boundary: the HE layer's encrypt entry points
            // carry their own secret(m) seeds.
            // flcheck: allow(ct-taint)
            .encrypt_batch(&self.keys.public, &plaintexts, seed)?;
        // `t` is the simulated timing record — a function of batch size and
        // key width, not of the plaintext values.
        // flcheck: allow(ct-taint)
        let timing = Self::accel_timing(&t, values.len());
        Ok((
            EncryptedVector {
                cts,
                count: values.len(),
            },
            timing,
        ))
    }

    /// Homomorphically folds several participants' vectors into one,
    /// routed through [`topology`](Self::topology): flat is one serial
    /// fold at the server; a tree folds each edge aggregator's fan-in
    /// first, then the partial aggregates level by level. Homomorphic
    /// addition is a product of canonical residues mod `n²` —
    /// associative — so the tree result is bit-identical to the flat
    /// fold, and both charge the same `parties − 1` additions.
    // flcheck: det-sink — aggregate EncryptedVector construction
    pub fn aggregate(&self, vectors: &[EncryptedVector]) -> Result<EncryptedVector> {
        match self.topology {
            AggregationTopology::Flat => self.fold_chain(vectors),
            AggregationTopology::Tree { .. } => {
                let mut level = self
                    .topology
                    .leaf_groups(vectors.len())
                    .into_iter()
                    // `leaf_groups` tiles `0..vectors.len()` exactly.
                    // flcheck: allow(pf-index)
                    .map(|g| self.fold_chain(&vectors[g]))
                    .collect::<Result<Vec<_>>>()?;
                while level.len() > 1 {
                    level = self
                        .topology
                        .leaf_groups(level.len())
                        .into_iter()
                        // flcheck: allow(pf-index)
                        .map(|g| self.fold_chain(&level[g]))
                        .collect::<Result<Vec<_>>>()?;
                }
                match level.into_iter().next() {
                    Some(v) => Ok(v),
                    None => Ok(EncryptedVector {
                        cts: Vec::new(),
                        count: 0,
                    }),
                }
            }
        }
    }

    /// One aggregator node's serial fold over its fan-in.
    // flcheck: det-sink — aggregate EncryptedVector construction
    fn fold_chain(&self, vectors: &[EncryptedVector]) -> Result<EncryptedVector> {
        let mut iter = vectors.iter();
        let first = match iter.next() {
            Some(v) => v,
            None => {
                return Ok(EncryptedVector {
                    cts: Vec::new(),
                    count: 0,
                })
            }
        };
        let mut acc = first.cts.clone();
        let count = first.count;
        for v in iter {
            // Protocol invariant: every party submits same-shaped vectors.
            // flcheck: allow(pf-assert)
            assert_eq!(v.count, count, "aggregating vectors of different sizes");
            let (next, t) = self.he.add_batch(&self.keys.public, &acc, &v.cts)?;
            self.charge(&t, 0);
            acc = next;
        }
        Ok(EncryptedVector { cts: acc, count })
    }

    /// Weighted homomorphic aggregation: slot `j` of the result holds
    /// `E(Σᵢ weights[i] · mᵢⱼ)`. One Straus multi-exponentiation per slot
    /// replaces the per-party `scalar_mul` + `add` loop — a single
    /// shared squaring chain for the whole batch (see
    /// [`he::paillier::PaillierPublicKey::weighted_sum`]). Key identity
    /// is checked per ciphertext, so cross-key mixes fail loudly in
    /// release builds too.
    // flcheck: det-sink — weighted aggregate construction
    pub fn aggregate_weighted(
        &self,
        vectors: &[EncryptedVector],
        weights: &[u64],
    ) -> Result<EncryptedVector> {
        let count = match vectors.first() {
            Some(v) => v.count,
            None => {
                return Ok(EncryptedVector {
                    cts: Vec::new(),
                    count: 0,
                })
            }
        };
        for v in vectors {
            // Protocol invariant: every party submits same-shaped vectors.
            // flcheck: allow(pf-assert)
            assert_eq!(v.count, count, "aggregating vectors of different sizes");
        }
        let batches: Vec<Vec<Ciphertext>> = vectors.iter().map(|v| v.cts.clone()).collect();
        match self.topology {
            AggregationTopology::Flat => {
                let (cts, t) = if self.agg_shards > 1 {
                    self.he.weighted_aggregate_sharded(
                        &self.keys.public,
                        &batches,
                        weights,
                        self.agg_shards,
                    )?
                } else {
                    self.he
                        .weighted_aggregate(&self.keys.public, &batches, weights)?
                };
                self.charge(&t, 0);
                Ok(EncryptedVector { cts, count })
            }
            AggregationTopology::Tree { .. } => {
                // Mirror the HE layer's shape contract before slicing.
                // flcheck: allow(pf-assert)
                assert_eq!(
                    batches.len(),
                    weights.len(),
                    "weighted_aggregate requires one weight per batch"
                );
                // Edge aggregators: each folds its fan-in with a sharded
                // Straus pass (the weighted stage happens exactly once,
                // at the leaves — upper levels only add partials).
                let mut level = Vec::new();
                for g in self.topology.leaf_groups(batches.len()) {
                    // `leaf_groups` tiles `0..batches.len()`, which the
                    // assert above pins to `weights.len()`.
                    // flcheck: allow(pf-index)
                    let group = &batches[g.clone()];
                    // flcheck: allow(pf-index)
                    let group_weights = &weights[g];
                    let (cts, t) = self.he.weighted_aggregate_sharded(
                        &self.keys.public,
                        group,
                        group_weights,
                        self.agg_shards,
                    )?;
                    self.charge(&t, 0);
                    level.push(EncryptedVector { cts, count });
                }
                while level.len() > 1 {
                    level = self
                        .topology
                        .leaf_groups(level.len())
                        .into_iter()
                        // flcheck: allow(pf-index)
                        .map(|g| self.fold_chain(&level[g]))
                        .collect::<Result<Vec<_>>>()?;
                }
                match level.into_iter().next() {
                    Some(v) => Ok(v),
                    None => Ok(EncryptedVector {
                        cts: Vec::new(),
                        count: 0,
                    }),
                }
            }
        }
    }

    /// One homomorphic addition of two same-shaped encrypted vectors,
    /// returning the cost alongside the sum instead of charging the
    /// shared accumulator. This is the streaming-fold step the round
    /// engine performs each time a ciphertext arrives at an aggregator
    /// node; the engine charges the returned timing itself.
    // flcheck: det-sink — aggregate EncryptedVector construction
    pub fn add_timed(
        &self,
        acc: &EncryptedVector,
        v: &EncryptedVector,
    ) -> Result<(EncryptedVector, AccelTiming)> {
        // Protocol invariant: every party submits same-shaped vectors.
        // flcheck: allow(pf-assert)
        assert_eq!(v.count, acc.count, "aggregating vectors of different sizes");
        let (cts, t) = self.he.add_batch(&self.keys.public, &acc.cts, &v.cts)?;
        Ok((
            EncryptedVector {
                cts,
                count: acc.count,
            },
            Self::accel_timing(&t, 0),
        ))
    }

    /// Decrypts an aggregated vector whose slots hold sums of `terms`
    /// contributions, returning the cost alongside the values instead of
    /// charging the shared accumulator (see
    /// [`Accelerator::encrypt_timed`] for why the round engine needs
    /// uncharged variants).
    pub fn decrypt_sum_timed(
        &self,
        vector: &EncryptedVector,
        terms: u32,
    ) -> Result<(Vec<f64>, AccelTiming)> {
        let (plaintexts, t) = self.he.decrypt_batch(&self.keys.private, &vector.cts)?;
        let timing = Self::accel_timing(&t, vector.count);
        let values = if self.batch_compression {
            self.codec.unpack_sums(&plaintexts, vector.count, terms)?
        } else {
            self.codec
                .quantizer()
                .check_terms(terms)
                .map_err(flbooster_core::Error::from)?;
            plaintexts
                .iter()
                .take(vector.count)
                .map(|m| self.codec.quantizer().dequantize_sum(m.low_u64(), terms))
                .collect()
        };
        Ok((values, timing))
    }

    /// Decrypts an aggregated vector whose slots hold sums of `terms`
    /// contributions, charging the cost to the shared accumulator.
    pub fn decrypt_sum(&self, vector: &EncryptedVector, terms: u32) -> Result<Vec<f64>> {
        let (values, t) = self.decrypt_sum_timed(vector, terms)?;
        self.charge_accel(&t);
        Ok(values)
    }

    /// Full secure-aggregation round for one party's view: encrypt every
    /// party's vector, aggregate, decrypt the averaged sum. Returns the
    /// element-wise *sums* (caller divides for the mean).
    pub fn secure_sum(&self, parties: &[Vec<f64>], seed: u64) -> Result<Vec<f64>> {
        let encrypted: Result<Vec<EncryptedVector>> = parties
            .iter()
            .enumerate()
            .map(|(k, v)| self.encrypt(v, seed.wrapping_add(k as u64)))
            .collect();
        let agg = self.aggregate(&encrypted?)?;
        self.decrypt_sum(&agg, crate::count_u32(parties.len()))
    }

    /// Accumulated backend timing since the last [`Accelerator::take_timing`].
    pub fn timing(&self) -> AccelTiming {
        *self.timing.lock()
    }

    /// Returns and clears the accumulated timing.
    pub fn take_timing(&self) -> AccelTiming {
        std::mem::take(&mut self.timing.lock())
    }

    /// GPU statistics, when this backend runs on the simulated device.
    pub fn device_stats(&self) -> Option<DeviceStats> {
        self.device.as_ref().map(|d| d.stats())
    }

    /// Converts an HE-layer timing plus a codec value count into the
    /// accelerator's cost record without charging it anywhere.
    fn accel_timing(t: &HeTiming, values: usize) -> AccelTiming {
        AccelTiming {
            he_seconds: t.sim_seconds,
            codec_seconds: values as f64 * CODEC_SECONDS_PER_VALUE,
            he_items: t.items,
            he_ops: t.ops,
        }
    }

    /// Charges a cost record produced by one of the `*_timed` entry
    /// points to the shared accumulator.
    // flcheck: charge-sink
    pub fn charge_accel(&self, t: &AccelTiming) {
        let mut timing = self.timing.lock();
        timing.he_seconds += t.he_seconds;
        timing.he_items += t.he_items;
        timing.he_ops += t.he_ops;
        timing.codec_seconds += t.codec_seconds;
    }

    // flcheck: charge-sink
    fn charge(&self, t: &HeTiming, values: usize) {
        self.charge_accel(&Self::accel_timing(t, values));
    }

    /// Raw access to the HE engine, for protocols (e.g. SecureBoost's
    /// gradient-histogram building) that manage their own packing layout.
    /// Callers must report timings back through
    /// [`Accelerator::charge_external`].
    pub fn he_backend(&self) -> &dyn HeBackend {
        self.he.as_ref()
    }

    /// Charges timing produced by direct [`Accelerator::he_backend`] use.
    // flcheck: charge-sink
    pub fn charge_external(&self, t: &HeTiming, codec_values: usize) {
        self.charge(t, codec_values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keys() -> PaillierKeyPair {
        let mut rng = ChaCha8Rng::seed_from_u64(0xFA7E);
        PaillierKeyPair::generate(&mut rng, 128).unwrap()
    }

    fn grads(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37).sin() * 0.8).collect()
    }

    #[test]
    fn all_backends_roundtrip_identically_in_value() {
        let keys = keys();
        let g = grads(40);
        let mut results = Vec::new();
        for kind in [
            BackendKind::Fate,
            BackendKind::Haflo,
            BackendKind::FlBooster,
            BackendKind::WithoutGhe,
            BackendKind::WithoutBc,
        ] {
            let acc = Accelerator::new(kind, keys.clone(), 4).unwrap();
            let enc = acc.encrypt(&g, 7).unwrap();
            let dec = acc.decrypt_sum(&enc, 1).unwrap();
            results.push(dec);
        }
        // Same quantizer everywhere => identical decoded values.
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        let bound = 1e-8;
        for (a, b) in g.iter().zip(&results[0]) {
            assert!((a - b).abs() < bound);
        }
    }

    #[test]
    fn compression_reduces_ciphertext_count() {
        let keys = keys();
        let g = grads(64);
        let fate = Accelerator::new(BackendKind::Fate, keys.clone(), 4).unwrap();
        let boost = Accelerator::new(BackendKind::FlBooster, keys, 4).unwrap();
        let ef = fate.encrypt(&g, 1).unwrap();
        let eb = boost.encrypt(&g, 1).unwrap();
        assert_eq!(ef.ciphertext_count(), 64);
        assert!(
            eb.ciphertext_count() <= 64 / 3 + 1,
            "{}",
            eb.ciphertext_count()
        );
        assert!(eb.bytes() < ef.bytes());
    }

    #[test]
    fn secure_sum_matches_plain_sum() {
        let keys = keys();
        let acc = Accelerator::new(BackendKind::FlBooster, keys, 4).unwrap();
        let parties: Vec<Vec<f64>> = (0..4).map(|k| grads(20 + k)).collect();
        // Vectors of different lengths must panic in aggregate...
        let same: Vec<Vec<f64>> = (0..4).map(|_| grads(20)).collect();
        let sums = acc.secure_sum(&same, 3).unwrap();
        for i in 0..20 {
            let expected: f64 = same.iter().map(|p| p[i]).sum();
            assert!((sums[i] - expected).abs() < 4e-8, "i={i}");
        }
        let _ = parties;
    }

    #[test]
    fn timing_ordering_fate_slowest_he() {
        let keys = keys();
        let g = grads(128);
        let he_secs = |kind| {
            let acc = Accelerator::new(kind, keys.clone(), 4).unwrap();
            acc.encrypt(&g, 1).unwrap();
            acc.timing().he_seconds
        };
        let fate = he_secs(BackendKind::Fate);
        let haflo = he_secs(BackendKind::Haflo);
        let boost = he_secs(BackendKind::FlBooster);
        assert!(fate > haflo, "FATE {fate} !> HAFLO {haflo}");
        assert!(haflo > boost, "HAFLO {haflo} !> FLBooster {boost}");
    }

    #[test]
    fn take_timing_resets() {
        let acc = Accelerator::new(BackendKind::Fate, keys(), 4).unwrap();
        acc.encrypt(&grads(4), 0).unwrap();
        let t = acc.take_timing();
        assert!(t.he_seconds > 0.0);
        assert_eq!(acc.timing(), AccelTiming::default());
    }

    #[test]
    fn device_stats_only_on_gpu_backends() {
        let keys = keys();
        assert!(Accelerator::new(BackendKind::Fate, keys.clone(), 4)
            .unwrap()
            .device_stats()
            .is_none());
        let h = Accelerator::new(BackendKind::Haflo, keys, 4).unwrap();
        h.encrypt(&grads(8), 0).unwrap();
        let stats = h.device_stats().unwrap();
        assert_eq!(stats.launches, 1);
    }

    #[test]
    fn network_profiles_differ() {
        let keys = keys();
        let fate = Accelerator::new(BackendKind::Fate, keys.clone(), 4).unwrap();
        let boost = Accelerator::new(BackendKind::FlBooster, keys, 4).unwrap();
        assert!(
            boost.network_profile().per_ciphertext_seconds
                < fate.network_profile().per_ciphertext_seconds
        );
    }

    #[test]
    fn empty_aggregate_ok() {
        let acc = Accelerator::new(BackendKind::Fate, keys(), 4).unwrap();
        let agg = acc.aggregate(&[]).unwrap();
        assert_eq!(agg.count, 0);
        let tree = Accelerator::new(BackendKind::Fate, keys(), 4)
            .unwrap()
            .with_topology(AggregationTopology::tree(4));
        assert_eq!(tree.aggregate(&[]).unwrap().count, 0);
        assert_eq!(tree.aggregate_weighted(&[], &[]).unwrap().count, 0);
    }

    #[test]
    fn tree_and_sharded_aggregation_match_flat_bit_identically() {
        let keys = keys();
        let g = grads(10);
        let flat = Accelerator::new(BackendKind::Fate, keys.clone(), 4).unwrap();
        let vectors: Vec<EncryptedVector> = (0..11u64)
            .map(|k| flat.encrypt(&g, 100 + k).unwrap())
            .collect();
        let weights: Vec<u64> = (0..11u64).map(|k| k * 31 + 1).collect();
        let plain = flat.aggregate(&vectors).unwrap();
        let weighted = flat.aggregate_weighted(&vectors, &weights).unwrap();
        for arity in [2usize, 4, 16] {
            for shards in [1usize, 3] {
                let acc = Accelerator::new(BackendKind::Fate, keys.clone(), 4)
                    .unwrap()
                    .with_topology(AggregationTopology::tree(arity))
                    .with_aggregation_shards(shards);
                assert_eq!(acc.topology(), AggregationTopology::tree(arity));
                assert_eq!(acc.aggregation_shards(), shards);
                // Ciphertext-level equality: canonical residues mod n².
                assert_eq!(acc.aggregate(&vectors).unwrap(), plain, "arity {arity}");
                assert_eq!(
                    acc.aggregate_weighted(&vectors, &weights).unwrap(),
                    weighted,
                    "arity {arity} shards {shards}"
                );
            }
        }
        // Flat sharded server (no tree) also matches.
        let sharded = Accelerator::new(BackendKind::Fate, keys, 4)
            .unwrap()
            .with_aggregation_shards(4);
        assert_eq!(
            sharded.aggregate_weighted(&vectors, &weights).unwrap(),
            weighted
        );
    }
}
