//! Whole-workspace lock-graph analysis.
//!
//! Lock acquisitions are seeded from guard bindings in the token stream
//! (method-style `.lock()` / `.read()` / `.write()` and helper-style
//! `lock(&expr)` calls, via [`crate::rules::find_acquisitions`]) plus
//! fn-attached `// flcheck: lock(name)` directives for acquire effects the
//! scan cannot see. Lock identity is the crate-qualified field name
//! (`gpu-sim::memory`, `rayon::deques`); bare receivers that alias an
//! enclosing-fn parameter are skipped, since they re-lock something the
//! caller already names.
//!
//! Each acquisition has a token-level live range (a `let`-bound guard runs
//! to its enclosing block close or an explicit `drop(var)`; a transient
//! guard runs to the end of its statement, including any `if let` / `match`
//! body it scrutinizes, matching Rust 2021 temporary extension). Held sets
//! then propagate through the workspace call graph via the transitive
//! acquire sets of every callee (a cycle-safe fixpoint, like `pf-reach`).
//! Guards that *escape* their acquiring fn by being returned are followed
//! via [`crate::escape`]'s returned-guard map: each call site of a
//! guard-returning fn synthesizes an acquisition with caller-side
//! liveness, closing DESIGN §14's false-negative window.
//!
//! Three rules over that graph:
//!
//! - **lock-cycle** — a directed cycle among acquisition-order edges
//!   (observed `a` held while `b` acquired, plus declared
//!   `lock-order(a < b)` edges), i.e. a potential deadlock. This replaces
//!   the old per-file `ld-order` rule: a declared order plus a reversed
//!   observation *is* a 2-cycle, and cross-file inversions now count too.
//! - **lock-across-hotpath** — a guard held across a call chain that
//!   reaches a hot-path kernel (`mont_mul` / `mont_sqr` / `mod_pow*` /
//!   `encrypt*`): serializing the workspace's dominant compute under a
//!   lock is a performance bug even when it cannot deadlock.
//! - **guard-across-steal** — a pool worker in `crates/shims/rayon`
//!   holding a deque guard across a park/steal operation, which stalls
//!   every thief contending for that deque.

use crate::callgraph::{backward_reach, hop, path_to, CallGraph, NodeId};
use crate::escape::EscapeInfo;
use crate::lexer::{TokKind, Token};
use crate::parse::ParsedFile;
use crate::report::Finding;
use crate::rules::{find_acquisitions, guard_binding, Acquisition};
use crate::source::match_brace;
use std::collections::{BTreeMap, BTreeSet};

/// Calls that block the current thread (matched by name even when the
/// callee does not resolve into first-party code, e.g. `std::thread::park`).
const BLOCKING_CALLS: &[&str] = &[
    "park",
    "park_timeout",
    "sleep",
    "yield_now",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "join",
];

/// The crate component of a workspace-relative path: `crates/gpu-sim/..`
/// is `gpu-sim`, `crates/shims/rayon/..` is `rayon`, anything else (the
/// root package, `tests/`, `examples/`) is `workspace`.
pub(crate) fn crate_of(rel_path: &str) -> &str {
    let rest = rel_path
        .strip_prefix("crates/shims/")
        .or_else(|| rel_path.strip_prefix("crates/"));
    match rest.and_then(|r| r.split('/').next()) {
        Some(c) if !c.is_empty() => c,
        _ => "workspace",
    }
}

/// One lock held over a token range of a function body.
#[derive(Debug, Clone)]
struct Held {
    /// Crate-qualified lock name, e.g. `gpu-sim::memory`.
    qual: String,
    /// Unqualified field name, e.g. `memory`.
    label: String,
    line: u32,
    /// Token index where the hold begins.
    start: usize,
    /// Token index one past the live range.
    end: usize,
}

/// One edge site in the acquisition-order graph.
#[derive(Debug, Clone)]
struct Site {
    file: String,
    line: u32,
    detail: String,
    declared: bool,
}

/// Runs all three lock-graph rules. `escape` is the returned-guard map
/// from [`crate::escape::analyze`]: a call to a guard-returning fn is a
/// live acquisition at the *call site*, so held sets survive the escape
/// edge DESIGN §14 used to lose.
pub fn check_lock_graph(
    files: &[ParsedFile],
    graph: &CallGraph,
    escape: &EscapeInfo,
    out: &mut Vec<Finding>,
) {
    let held = collect_held(files, graph, escape);

    // Transitive acquire sets: every lock a node may take, directly or via
    // any callee (monotone fixpoint; recursion terminates).
    let mut trans: BTreeMap<NodeId, BTreeSet<String>> = BTreeMap::new();
    for (n, hs) in &held {
        trans.insert(*n, hs.iter().map(|h| h.qual.clone()).collect());
    }
    loop {
        let mut changed = false;
        for (fi, pf) in files.iter().enumerate() {
            for gi in 0..pf.fns.len() {
                let n = (fi, gi);
                let mut add: BTreeSet<String> = BTreeSet::new();
                for e in graph.out(n) {
                    if let Some(t) = trans.get(&e.to) {
                        add.extend(t.iter().cloned());
                    }
                }
                let cur = trans.entry(n).or_default();
                let before = cur.len();
                cur.extend(add);
                changed |= cur.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    check_cycles(files, graph, &held, &trans, out);
    check_hotpath(files, graph, &held, out);
    check_steal(files, graph, &held, &trans, out);
}

/// Collects the per-function held-lock ranges (token acquisitions plus
/// directive acquire effects); test fns are exempt. Calls resolving to a
/// guard-returning fn (per the escape pass) synthesize an acquisition at
/// the call site: the callee's guard lives on in the caller, with the
/// caller's own `let`-binding / transient liveness applied to the call
/// expression.
fn collect_held(
    files: &[ParsedFile],
    graph: &CallGraph,
    escape: &EscapeInfo,
) -> BTreeMap<NodeId, Vec<Held>> {
    let mut held: BTreeMap<NodeId, Vec<Held>> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        let kr = crate_of(&pf.src.rel_path);
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let mut hs: Vec<Held> = Vec::new();
            for name in &f.locks {
                hs.push(Held {
                    qual: format!("{kr}::{name}"),
                    label: name.clone(),
                    line: f.line,
                    start: f.body_start,
                    end: f.body_end,
                });
            }
            for a in find_acquisitions(&pf.src, f.body_start, f.body_end) {
                if f.nested.iter().any(|&(s, e)| a.idx >= s && a.idx < e) {
                    continue; // belongs to a nested fn item
                }
                if a.bare && (a.name == "self" || f.params.iter().any(|p| *p == a.name)) {
                    continue; // aliases a lock the caller names
                }
                hs.push(Held {
                    qual: format!("{kr}::{}", a.name),
                    label: a.name.clone(),
                    line: a.line,
                    start: a.idx,
                    end: live_end(&pf.src.tokens, &a, f.body_end),
                });
            }
            let toks = &pf.src.tokens;
            let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
            for e in graph.out((fi, gi)) {
                let Some(rets) = escape.returned.get(&e.to) else {
                    continue;
                };
                let cs = &f.calls[e.call];
                if cs.callee == "lock" && !cs.is_method {
                    continue; // helper-style call, already an acquisition
                }
                let close = match_brace(toks, cs.name_idx + 1);
                // Liveness of the returned guard in *this* fn: bound if
                // the call is the chain end of a `let`, else transient.
                let synth = Acquisition {
                    name: String::new(),
                    line: cs.line,
                    idx: cs.name_idx,
                    guard_var: guard_binding(toks, cs.name_idx, close),
                    bare: false,
                };
                let end = live_end(toks, &synth, f.body_end);
                for (qual, label) in rets {
                    if !seen.insert((cs.name_idx, qual.clone())) {
                        continue; // ambiguous resolution: one hold per site
                    }
                    hs.push(Held {
                        qual: qual.clone(),
                        label: label.clone(),
                        line: cs.line,
                        start: cs.name_idx,
                        end,
                    });
                }
            }
            if !hs.is_empty() {
                held.insert((fi, gi), hs);
            }
        }
    }
    held
}

/// Token index one past an acquisition's live range.
///
/// A `let`-bound guard lives until its enclosing block closes or an
/// explicit `drop(var)`. A transient guard lives to the end of its
/// statement: through `{..}` blocks the statement continues into (an
/// `if let` / `match` on the guarded value — Rust 2021 extends the
/// temporary through the body), ending at a top-level `;` or when such a
/// block closes with no `else` continuation.
pub(crate) fn live_end(toks: &[Token], a: &Acquisition, fn_end: usize) -> usize {
    let limit = fn_end.min(toks.len());
    let mut depth = 0i32;
    let mut i = a.idx;
    if let Some(var) = &a.guard_var {
        while i < limit {
            let t = &toks[i];
            match t.kind {
                TokKind::Open if t.text == "{" => depth += 1,
                TokKind::Close if t.text == "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return i;
                    }
                }
                TokKind::Ident
                    if t.text == "drop"
                        && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                        && toks.get(i + 2).is_some_and(|t| t.is_ident(var))
                        && toks.get(i + 3).map(|t| t.text.as_str()) == Some(")") =>
                {
                    return i;
                }
                _ => {}
            }
            i += 1;
        }
    } else {
        while i < limit {
            let t = &toks[i];
            match t.kind {
                TokKind::Op if t.text == ";" && depth == 0 => return i,
                TokKind::Open if t.text == "{" => depth += 1,
                TokKind::Close if t.text == "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return i;
                    }
                    if depth == 0 && !toks.get(i + 1).is_some_and(|t| t.is_ident("else")) {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    limit
}

/// True when call-site token index `idx` falls inside the hold `a`.
fn in_range(a: &Held, idx: usize) -> bool {
    a.start < idx && idx < a.end
}

/// Builds the acquisition-order edge set and reports directed cycles.
fn check_cycles(
    files: &[ParsedFile],
    graph: &CallGraph,
    held: &BTreeMap<NodeId, Vec<Held>>,
    trans: &BTreeMap<NodeId, BTreeSet<String>>,
    out: &mut Vec<Finding>,
) {
    // (from, to) -> first site observed. Files are walked in index order,
    // so the representative site is deterministic.
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            let n = (fi, gi);
            let Some(hs) = held.get(&n) else { continue };
            // Intra-fn: `b` acquired while `a` is held.
            for a in hs {
                for b in hs {
                    if b.start > a.start && in_range(a, b.start) && b.qual != a.qual {
                        edges
                            .entry((a.qual.clone(), b.qual.clone()))
                            .or_insert_with(|| Site {
                                file: pf.src.rel_path.clone(),
                                line: b.line,
                                detail: format!(
                                    "`{}` acquired while `{}` held in `{}`",
                                    b.label, a.label, f.name
                                ),
                                declared: false,
                            });
                    }
                }
            }
            // Directive acquire effects hold for the whole body in listed
            // order: `lock(a, b)` means a is taken before b.
            for (i, la) in f.locks.iter().enumerate() {
                for lb in f.locks.iter().skip(i + 1) {
                    if la != lb {
                        let kr = crate_of(&pf.src.rel_path);
                        edges
                            .entry((format!("{kr}::{la}"), format!("{kr}::{lb}")))
                            .or_insert_with(|| Site {
                                file: pf.src.rel_path.clone(),
                                line: f.line,
                                detail: format!(
                                    "`{lb}` listed after `{la}` in the lock(..) effect of `{}`",
                                    f.name
                                ),
                                declared: false,
                            });
                    }
                }
            }
            // Inter-fn: a call made while `a` is held acquires everything
            // in the callee's transitive acquire set.
            for e in graph.out(n) {
                let cs = &f.calls[e.call];
                let Some(callee_locks) = trans.get(&e.to) else {
                    continue;
                };
                for a in hs {
                    if !in_range(a, cs.name_idx) {
                        continue;
                    }
                    for x in callee_locks {
                        if *x == a.qual {
                            continue;
                        }
                        edges
                            .entry((a.qual.clone(), x.clone()))
                            .or_insert_with(|| Site {
                                file: pf.src.rel_path.clone(),
                                line: cs.line,
                                detail: format!(
                                    "`{}` held in `{}` across call to `{}`, which acquires `{x}`",
                                    a.label, f.name, cs.callee
                                ),
                                declared: false,
                            });
                    }
                }
            }
        }
    }
    // Declared lock-order chains contribute (declared) edges: a declared
    // `a < b` plus an observed `b`-held-acquiring-`a` is a 2-cycle.
    for pf in files {
        let kr = crate_of(&pf.src.rel_path);
        for lo in &pf.src.lock_orders {
            for i in 0..lo.chain.len() {
                for j in i + 1..lo.chain.len() {
                    let (a, b) = (&lo.chain[i], &lo.chain[j]);
                    edges
                        .entry((format!("{kr}::{a}"), format!("{kr}::{b}")))
                        .or_insert_with(|| Site {
                            file: pf.src.rel_path.clone(),
                            line: lo.line,
                            detail: format!("declared lock-order `{a} < {b}`"),
                            declared: true,
                        });
                }
            }
        }
    }

    let by_path: BTreeMap<&str, &ParsedFile> = files
        .iter()
        .map(|pf| (pf.src.rel_path.as_str(), pf))
        .collect();
    for cycle in enumerate_cycles(&edges) {
        // Walk the cycle's edges; report at the first *observed* site (a
        // purely declared cycle is a documentation bug, still reported).
        let edge_keys: Vec<(String, String)> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        let site_key = edge_keys
            .iter()
            .find(|k| edges.get(*k).is_some_and(|s| !s.declared))
            .unwrap_or(&edge_keys[0]);
        let Some(site) = edges.get(site_key) else {
            continue;
        };
        if by_path
            .get(site.file.as_str())
            .is_some_and(|pf| pf.src.is_allowed("lock-cycle", site.line))
        {
            continue;
        }
        let chain: Vec<String> = edge_keys
            .iter()
            .filter_map(|k| {
                let s = edges.get(k)?;
                Some(format!(
                    "{} -> {} ({}:{}, {})",
                    k.0, k.1, s.file, s.line, s.detail
                ))
            })
            .collect();
        let mut ring = cycle.clone();
        ring.push(cycle[0].clone());
        out.push(Finding::with_chain(
            "lock-cycle",
            &site.file,
            site.line,
            format!(
                "potential deadlock: lock acquisition cycle {}",
                ring.join(" -> ")
            ),
            chain,
        ));
    }
}

/// Enumerates simple directed cycles over the edge set, each rotated so
/// its lexicographically smallest lock comes first; sorted output.
fn enumerate_cycles(edges: &BTreeMap<(String, String), Site>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut out: Vec<Vec<String>> = Vec::new();
    let mut budget = 100_000usize; // backstop; real graphs are tiny
    let nodes: Vec<&String> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&String> = vec![start];
        dfs(start, start, &adj, &mut path, &mut out, &mut budget);
    }
    out.sort();
    out.dedup();
    out
}

/// DFS over simple paths restricted to nodes `>= start`, so each cycle is
/// found exactly once, anchored at its smallest lock.
fn dfs<'a>(
    start: &'a String,
    at: &'a String,
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    path: &mut Vec<&'a String>,
    out: &mut Vec<Vec<String>>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    let Some(next) = adj.get(at) else { return };
    for &b in next {
        if b == start && path.len() >= 2 {
            out.push(path.iter().map(|s| s.to_string()).collect());
        } else if b > start && !path.contains(&b) {
            path.push(b);
            dfs(start, b, adj, path, out, budget);
            path.pop();
        }
    }
}

/// Hot-path predicate on a function name. Estimate and counter functions
/// share kernel-name prefixes but only do arithmetic on counts, so the
/// `_estimate` / `_mac_count` / `_ops` suffixes are excluded.
fn is_hot_name(name: &str) -> bool {
    if name.ends_with("_estimate") || name.ends_with("_mac_count") || name.ends_with("_ops") {
        return false;
    }
    name == "mont_mul"
        || name == "mont_sqr"
        || name.starts_with("mont_mul_")
        || name.starts_with("mont_sqr_")
        || name.starts_with("mod_pow")
        || name.starts_with("encrypt")
}

/// Flags guards held across call chains that reach a hot-path kernel.
fn check_hotpath(
    files: &[ParsedFile],
    graph: &CallGraph,
    held: &BTreeMap<NodeId, Vec<Held>>,
    out: &mut Vec<Finding>,
) {
    let mut seed: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if is_hot_name(&f.name) && !f.in_test {
                seed.insert((fi, gi));
            }
        }
    }
    let hot = backward_reach(files, graph, seed);
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            let n = (fi, gi);
            let Some(hs) = held.get(&n) else { continue };
            let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
            for e in graph.out(n) {
                if e.to == n || !hot.contains(&e.to) {
                    continue;
                }
                let cs = &f.calls[e.call];
                for a in hs {
                    if !in_range(a, cs.name_idx)
                        || !seen.insert((cs.line, a.qual.clone()))
                        || pf.src.is_allowed("lock-across-hotpath", cs.line)
                    {
                        continue;
                    }
                    let Some(path) =
                        path_to(graph, e.to, |m| is_hot_name(&files[m.0].fns[m.1].name))
                    else {
                        continue;
                    };
                    let kernel = &files[path[path.len() - 1].0].fns[path[path.len() - 1].1];
                    let mut chain = vec![hop(files, n)];
                    chain.extend(path.iter().map(|&m| hop(files, m)));
                    out.push(Finding::with_chain(
                        "lock-across-hotpath",
                        &pf.src.rel_path,
                        cs.line,
                        format!(
                            "guard on `{}` held in `{}` across call to `{}`, whose chain \
                             reaches hot-path kernel `{}`",
                            a.qual, f.name, cs.callee, kernel.name
                        ),
                        chain,
                    ));
                }
            }
        }
    }
}

/// Flags rayon-shim workers holding a deque guard across park/steal.
fn check_steal(
    files: &[ParsedFile],
    graph: &CallGraph,
    held: &BTreeMap<NodeId, Vec<Held>>,
    trans: &BTreeMap<NodeId, BTreeSet<String>>,
    out: &mut Vec<Finding>,
) {
    // Nodes whose bodies make a blocking call (by name, resolution not
    // required), closed backwards over the graph.
    let mut seed: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if !f.in_test
                && f.calls
                    .iter()
                    .any(|c| BLOCKING_CALLS.contains(&c.callee.as_str()))
            {
                seed.insert((fi, gi));
            }
        }
    }
    let blocking = backward_reach(files, graph, seed);

    for (fi, pf) in files.iter().enumerate() {
        if !pf.src.rel_path.contains("shims/rayon") {
            continue;
        }
        for (gi, f) in pf.fns.iter().enumerate() {
            let n = (fi, gi);
            let Some(hs) = held.get(&n) else { continue };
            let mut seen: BTreeSet<u32> = BTreeSet::new();
            for a in hs.iter().filter(|a| a.label == "deques") {
                // A second deque acquisition while one is held: stealing
                // from a victim without releasing the worker's own deque.
                for b in hs.iter().filter(|b| b.label == "deques") {
                    if b.start > a.start
                        && in_range(a, b.start)
                        && seen.insert(b.line)
                        && !pf.src.is_allowed("guard-across-steal", b.line)
                    {
                        out.push(Finding::with_chain(
                            "guard-across-steal",
                            &pf.src.rel_path,
                            b.line,
                            format!(
                                "worker in `{}` steals from a deque while still holding \
                                 its own deque guard: release before stealing",
                                f.name
                            ),
                            vec![hop(files, n)],
                        ));
                    }
                }
                // A blocking call (or a call whose chain blocks / re-locks
                // the deques) while the deque guard is held.
                for cs in &f.calls {
                    if !in_range(a, cs.name_idx) {
                        continue;
                    }
                    let direct = BLOCKING_CALLS.contains(&cs.callee.as_str());
                    let via_chain = graph.out(n).iter().any(|e| {
                        f.calls[e.call].name_idx == cs.name_idx
                            && (blocking.contains(&e.to)
                                || trans.get(&e.to).is_some_and(|t| t.contains(&a.qual)))
                    });
                    if (direct || via_chain)
                        && seen.insert(cs.line)
                        && !pf.src.is_allowed("guard-across-steal", cs.line)
                    {
                        out.push(Finding::with_chain(
                            "guard-across-steal",
                            &pf.src.rel_path,
                            cs.line,
                            format!(
                                "deque guard `{}` held in `{}` across blocking `{}`: \
                                 park/steal must run with the deque released",
                                a.label, f.name, cs.callee
                            ),
                            vec![
                                hop(files, n),
                                format!("{} ({}:{})", cs.callee, pf.src.rel_path, cs.line),
                            ],
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        // Escape findings are the escape pass's own tests' concern; only
        // the returned-guard map feeds the lock graph here.
        let escape = crate::escape::analyze(&parsed, &graph, &mut Vec::new());
        check_lock_graph(&parsed, &graph, &escape, &mut out);
        out
    }

    #[test]
    fn crate_qualification() {
        assert_eq!(crate_of("crates/gpu-sim/src/device.rs"), "gpu-sim");
        assert_eq!(crate_of("crates/shims/rayon/src/pool.rs"), "rayon");
        assert_eq!(crate_of("src/bin/flcheck.rs"), "workspace");
        assert_eq!(crate_of("tests/x.rs"), "workspace");
    }

    #[test]
    fn two_fn_inversion_is_a_cycle() {
        let src = "\
impl C {
    fn ab(&self) -> u64 {
        let t = self.table.lock();
        let s = self.stats.lock();
        *t + *s
    }
    fn ba(&self) -> u64 {
        let s = self.stats.lock();
        let t = self.table.lock();
        *t + *s
    }
}
";
        let got = run(&[("crates/core/src/c.rs", src)]);
        let cycles: Vec<&Finding> = got.iter().filter(|f| f.rule == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{got:?}");
        // Canonical rotation: smallest lock (core::stats) first, so the
        // reported site is the stats->table edge in `ba`.
        assert_eq!(cycles[0].line, 9);
        assert!(cycles[0]
            .message
            .contains("core::stats -> core::table -> core::stats"));
    }

    #[test]
    fn declared_order_plus_inversion_is_a_cycle() {
        let src = "\
// flcheck: lock-order(table < counters)
impl C {
    fn backwards(&self) {
        let c = self.counters.lock();
        let t = self.table.lock();
        c.bump(*t);
    }
}
";
        let got = run(&[("crates/core/src/c.rs", src)]);
        let cycles: Vec<&Finding> = got.iter().filter(|f| f.rule == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{got:?}");
        // Reported at the observed (non-declared) edge: counters -> table.
        assert_eq!(cycles[0].line, 5);
    }

    #[test]
    fn cross_file_cycle_through_call_edges() {
        let c = "\
pub fn one(x: u64) {
    let g = LEFT.lock();
    two(*g + x);
}
";
        let d = "\
pub fn two(x: u64) {
    let g = RIGHT.lock();
    one_again(*g + x);
}
pub fn one_again(x: u64) {
    let g = LEFT.lock();
    consume(*g + x);
}
";
        // one: LEFT held across the call into d.rs, whose transitive
        // acquire set is {RIGHT, LEFT} -> edge LEFT->RIGHT (the LEFT
        // self-edge is skipped). two: RIGHT held across one_again, which
        // acquires LEFT -> edge RIGHT->LEFT. A cross-file 2-cycle.
        let got = run(&[("crates/core/src/c.rs", c), ("crates/core/src/d.rs", d)]);
        let cycles: Vec<&Finding> = got.iter().filter(|f| f.rule == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{got:?}");
        assert!(cycles[0]
            .message
            .contains("core::LEFT -> core::RIGHT -> core::LEFT"));
    }

    #[test]
    fn guard_dropped_before_second_lock_is_no_cycle() {
        let src = "\
impl C {
    fn ab(&self) {
        let t = self.table.lock();
        drop(t);
        let s = self.stats.lock();
        s.bump();
    }
    fn ba(&self) {
        let s = self.stats.lock();
        drop(s);
        let t = self.table.lock();
        t.bump();
    }
}
";
        let got = run(&[("crates/core/src/c.rs", src)]);
        assert!(got.iter().all(|f| f.rule != "lock-cycle"), "{got:?}");
    }

    #[test]
    fn transient_guards_in_separate_statements_do_not_overlap() {
        let src = "\
impl C {
    fn a(&self) -> u64 { self.table.lock().len() + self.stats.lock().len() }
    fn b(&self) {
        self.stats.lock().bump();
        self.table.lock().bump();
    }
}
";
        // fn a: one statement, table still live when stats is taken ->
        // edge table->stats. fn b: two statements, no overlap -> no
        // stats->table edge, so no cycle.
        let got = run(&[("crates/core/src/c.rs", src)]);
        assert!(got.iter().all(|f| f.rule != "lock-cycle"), "{got:?}");
    }

    #[test]
    fn bare_param_receiver_is_skipped() {
        let src = "\
fn lock<T>(m: &Mutex<T>) -> Guard<'_, T> {
    m.lock()
}
impl C {
    fn a(&self) {
        let g = lock(&self.table);
        let h = lock(&self.stats);
        use_both(g, h);
    }
    fn b(&self) {
        let h = lock(&self.stats);
        let g = lock(&self.table);
        use_both(g, h);
    }
}
";
        let got = run(&[("crates/he/src/c.rs", src)]);
        // The helper's `m.lock()` is a bare param receiver — without the
        // skip it would add he::m edges; the real cycle is table/stats.
        let cycles: Vec<&Finding> = got.iter().filter(|f| f.rule == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{got:?}");
        assert!(cycles[0]
            .message
            .contains("he::stats -> he::table -> he::stats"));
    }

    #[test]
    fn hotpath_guard_is_flagged_with_chain() {
        let src = "\
impl C {
    fn launch(&self) {
        let g = self.stats.lock();
        run_kernel(*g);
    }
}
fn run_kernel(x: u64) -> u64 {
    mont_mul(x, x)
}
fn mont_mul(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}
";
        let got = run(&[("crates/gpu-sim/src/c.rs", src)]);
        let hits: Vec<&Finding> = got
            .iter()
            .filter(|f| f.rule == "lock-across-hotpath")
            .collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 4);
        assert_eq!(
            hits[0].chain,
            vec![
                "launch (crates/gpu-sim/src/c.rs:2)",
                "run_kernel (crates/gpu-sim/src/c.rs:7)",
                "mont_mul (crates/gpu-sim/src/c.rs:10)",
            ]
        );
    }

    #[test]
    fn estimate_suffix_is_not_hot() {
        let src = "\
impl C {
    fn plan(&self) {
        let g = self.stats.lock();
        g.add(encrypt_op_estimate());
    }
}
fn encrypt_op_estimate() -> u64 { 17 }
";
        let got = run(&[("crates/gpu-sim/src/c.rs", src)]);
        assert!(
            got.iter().all(|f| f.rule != "lock-across-hotpath"),
            "{got:?}"
        );
    }

    #[test]
    fn steal_rules_fire_only_in_the_rayon_shim() {
        let src = "\
impl Pool {
    fn bad_park(&self, me: usize) {
        let mine = self.deques[me].lock();
        std::thread::park();
        mine.pop_front();
    }
    fn bad_double(&self, me: usize) {
        let mine = self.deques[me].lock();
        let other = self.deques[me + 1].lock();
        other.pop_back();
        mine.pop_front();
    }
}
";
        let got = run(&[("crates/shims/rayon/src/p.rs", src)]);
        let steals: Vec<(u32, &str)> = got
            .iter()
            .filter(|f| f.rule == "guard-across-steal")
            .map(|f| (f.line, f.message.as_str()))
            .collect();
        assert_eq!(steals.len(), 2, "{got:?}");
        assert_eq!(steals[0].0, 4);
        assert_eq!(steals[1].0, 9);
        // The same code outside the shim is not in scope for this rule.
        let outside = run(&[("crates/core/src/p.rs", src)]);
        assert!(outside.iter().all(|f| f.rule != "guard-across-steal"));
    }

    #[test]
    fn directive_lock_effect_propagates_to_callers() {
        let src = "\
// flcheck: lock(registry)
fn with_registry() {
    opaque();
}
impl C {
    fn outer(&self) {
        let g = self.stats.lock();
        with_registry();
    }
    fn inverse(&self) {
        // flcheck: allow(lock-cycle)
        grab_stats_internal();
    }
}
// flcheck: lock(registry, stats)
fn grab_stats_internal() {
    opaque();
}
";
        let got = run(&[("crates/fl/src/c.rs", src)]);
        // outer: stats held across with_registry -> edge stats->registry.
        // grab_stats_internal's directive lists registry before stats ->
        // edge registry->stats. Cycle exists but the observed site chosen
        // is the first non-declared edge; the allow on `inverse` does not
        // cover it, so the cycle is reported at the outer call site or the
        // directive line — assert it is reported at all.
        assert!(
            got.iter().any(|f| f.rule == "lock-cycle"
                && f.message
                    .contains("fl::registry -> fl::stats -> fl::registry")),
            "{got:?}"
        );
    }
}
