//! The work-stealing host thread pool.
//!
//! Execution model: every parallel-iterator drive becomes a batch of
//! indexed tasks (chunks of the iteration space). [`run_ordered`] seeds
//! the tasks contiguously across per-worker deques, spawns scoped
//! `std::thread` workers (the caller participates as worker 0), and each
//! worker pops work from the *front* of its own deque and, when that runs
//! dry, steals from the *back* of a victim's — the classic crossbeam
//! deque discipline, here built on the `parking_lot` shim's mutexes.
//! Because every task is seeded before the workers start and tasks never
//! spawn tasks, a worker that finds all deques empty can exit immediately:
//! no condition variables, no idle spinning.
//!
//! Ordering and determinism: each task returns `(task_index, output)`;
//! the caller reassembles outputs by task index, so results are always in
//! task order no matter which worker ran what. Task *outputs* therefore
//! never depend on the thread count; only wall-clock does.
//!
//! Panics: a panicking task body is caught in the worker, the first
//! payload is parked in a shared slot, the stop flag cancels undispatched
//! work, and the payload is re-raised on the calling thread once every
//! worker has drained. Nothing is poisoned — the next drive starts from
//! fresh deques.

// flcheck: lock-order(deques < panic)

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// How many tasks to aim for per worker when chunking an iteration space:
/// enough surplus that stealing can rebalance uneven item costs, few
/// enough that deque traffic stays negligible.
pub(crate) const CHUNKS_PER_WORKER: usize = 4;

/// A handle carrying an explicit worker count, mirroring
/// `rayon::ThreadPool`. Built by [`ThreadPoolBuilder`]; [`install`] runs a
/// closure with this pool's thread count in effect.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Builder for [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The shim's build
/// cannot actually fail (workers are spawned per drive, not up front), but
/// the `Result` keeps call sites source-compatible with rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means "use the default sizing"
    /// (`RAYON_NUM_THREADS`, else `available_parallelism`).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect: every parallel
    /// drive started by `op` on this thread fans out across
    /// `self.current_num_threads()` workers.
    ///
    /// Divergence from rayon: `op` runs on the *calling* thread (which
    /// also participates as a worker during drives), not on a resident
    /// pool thread. Results are identical; only thread identity differs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED.with(|c| c.replace(self.threads));
        let _restore = Restore(prev);
        op()
    }

    /// The worker count drives under this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]
    /// (0 = none).
    static INSTALLED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

/// Default pool width: `RAYON_NUM_THREADS` when set to a positive
/// integer, else `std::thread::available_parallelism()`.
// flcheck: det-absorb — pool width affects scheduling only; every drive
// returns outputs in task order
fn default_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The number of worker threads the current thread's drives will use:
/// the innermost [`ThreadPool::install`] override, else the global
/// default (computed once per process).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        *GLOBAL_THREADS.get_or_init(default_threads)
    }
}

/// State shared between the workers of one drive.
struct Shared {
    /// One work deque per worker, pre-seeded with contiguous task ranges.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Set when a task panicked: undispatched tasks are abandoned.
    stop: AtomicBool,
    /// First panic payload, re-raised on the caller after the drive.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Executes `tasks` indexed work units across the pool and returns their
/// outputs **in task order**. `f` must be safe to call concurrently from
/// several threads (hence `Sync`); each index in `0..tasks` is evaluated
/// exactly once.
///
/// With an effective width of one (single-thread pool, or a single task)
/// everything runs inline on the caller with zero spawns — the
/// `RAYON_NUM_THREADS=1` configuration is exactly the old sequential
/// shim.
// flcheck: det-absorb — worker count decides chunking only; results are
// reassembled in task order below
pub(crate) fn run_ordered<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = current_num_threads().min(tasks).max(1);
    if workers <= 1 {
        // Inline fast path; a panic propagates straight to the caller.
        return (0..tasks).map(f).collect();
    }

    let shared = Shared {
        deques: seed_deques(tasks, workers),
        stop: AtomicBool::new(false),
        panic: Mutex::new(None),
    };

    let mut results: Vec<(usize, T)> = Vec::with_capacity(tasks);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers - 1);
        for w in 1..workers {
            let shared = &shared;
            let f = &f;
            handles.push(scope.spawn(move || worker_loop(shared, w, f)));
        }
        // The caller is worker 0.
        results.extend(worker_loop(&shared, 0, &f));
        for h in handles {
            // Worker closures never unwind (task panics are caught and
            // parked), so a join error is unreachable; tolerate it anyway.
            if let Ok(part) = h.join() {
                results.extend(part);
            }
        }
    });

    if let Some(payload) = shared.panic.lock().take() {
        panic::resume_unwind(payload);
    }

    results.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(results.len(), tasks, "every task must report exactly once");
    results.into_iter().map(|(_, v)| v).collect()
}

/// Distributes task indices contiguously across `workers` deques, so each
/// worker starts on its own cache-friendly span and stealing only kicks in
/// on imbalance.
fn seed_deques(tasks: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    let per = tasks.div_ceil(workers);
    (0..workers)
        .map(|w| {
            let start = (w * per).min(tasks);
            let end = ((w + 1) * per).min(tasks);
            Mutex::new((start..end).collect())
        })
        .collect()
}

/// One worker: drain own deque from the front, steal from victims' backs,
/// run each task under `catch_unwind`, accumulate `(index, output)` pairs.
fn worker_loop<T, F>(shared: &Shared, me: usize, f: &F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        let Some(idx) = next_task(shared, me) else {
            break;
        };
        match panic::catch_unwind(AssertUnwindSafe(|| f(idx))) {
            Ok(value) => out.push((idx, value)),
            Err(payload) => {
                let mut slot = shared.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                shared.stop.store(true, Ordering::Relaxed);
            }
        }
    }
    out
}

/// Pops from the worker's own deque, then tries to steal from each victim
/// in turn. `None` means the drive has no undispatched work left.
fn next_task(shared: &Shared, me: usize) -> Option<usize> {
    if let Some(idx) = shared.deques[me].lock().pop_front() {
        return Some(idx);
    }
    let n = shared.deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(idx) = shared.deques[victim].lock().pop_back() {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    #[test]
    fn outputs_are_in_task_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out = pool.install(|| run_ordered(100, |i| i * 3));
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn truly_concurrent_workers() {
        // Four tasks rendezvous: each waits until all four have started,
        // which is only possible when four OS threads run them
        // concurrently.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let arrived = AtomicUsize::new(0);
        let deadline = Instant::now() + Duration::from_secs(10);
        let ids = pool.install(|| {
            run_ordered(4, |_| {
                arrived.fetch_add(1, Ordering::SeqCst);
                while arrived.load(Ordering::SeqCst) < 4 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                std::thread::current().id()
            })
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 4, "rendezvous timed out");
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), 4, "tasks must run on distinct threads");
    }

    #[test]
    fn stealing_rebalances_uneven_tasks() {
        // Worker 0's contiguous span holds all the slow tasks; with
        // stealing the drive finishes far faster than the serial sum.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out = pool.install(|| {
            run_ordered(8, |i| {
                if i < 2 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                i
            })
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn panic_is_surfaced_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_ordered(64, |i| {
                    if i == 37 {
                        panic!("task 37 exploded");
                    }
                    i
                })
            })
        }));
        let payload = caught.expect_err("the task panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("exploded"), "unexpected payload {msg:?}");
        // The pool is not poisoned: the next drive works.
        let ok = pool.install(|| run_ordered(16, |i| i + 1));
        assert_eq!(ok, (1..17).collect::<Vec<_>>());
    }

    #[test]
    fn install_override_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let base = current_num_threads();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn empty_and_single_task_drives() {
        let none: Vec<u8> = run_ordered(0, |_| 0u8);
        assert!(none.is_empty());
        let one = run_ordered(1, |i| i + 10);
        assert_eq!(one, vec![10]);
    }
}
