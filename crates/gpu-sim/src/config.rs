//! Device descriptions.

/// Static description of a simulated GPU.
///
/// Field meanings follow the CUDA occupancy model: a kernel block can be
/// resident on an SM only if its thread, register, and shared-memory
/// demands all fit; the per-SM limits below bound how many blocks (and
/// therefore warps) can be co-resident.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, reported in launch logs.
    pub name: &'static str,
    /// Number of stream multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_registers_per_thread: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Host↔device copy bandwidth in bytes/second (PCIe), the paper's
    /// `1/β_transfer`.
    pub transfer_bytes_per_sec: f64,
    /// Simulated time for one limb-level multiply-accumulate on one GPU
    /// thread, in seconds (the paper's `β_gpu` at word granularity).
    pub sec_per_thread_op: f64,
}

impl DeviceConfig {
    /// The paper's testbed: NVIDIA GeForce RTX 3090 (GA102, 82 SMs).
    ///
    /// `sec_per_thread_op` is an *effective* per-thread cost of one
    /// multi-precision limb MAC, calibrated so that the simulated Paillier
    /// throughput at 1024-bit keys lands near the paper's Table IV
    /// (~59 k instances/s for a HAFLO-style launch). It folds in memory
    /// stalls, warp scheduling, and instruction overheads that the
    /// execution model does not represent explicitly.
    pub fn rtx3090() -> Self {
        DeviceConfig {
            name: "NVIDIA GeForce RTX 3090 (simulated)",
            num_sms: 82,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 100 * 1024,
            warp_size: 32,
            transfer_bytes_per_sec: 16.0e9, // PCIe 4.0 x16 effective
            sec_per_thread_op: 1.4e-6,
        }
    }

    /// A deliberately tiny device for deterministic unit tests: 2 SMs,
    /// 128 threads each.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny",
            num_sms: 2,
            max_threads_per_sm: 128,
            max_blocks_per_sm: 4,
            registers_per_sm: 4096,
            max_registers_per_thread: 64,
            shared_mem_per_sm: 16 * 1024,
            warp_size: 32,
            transfer_bytes_per_sec: 1.0e9,
            sec_per_thread_op: 1.0e-6,
        }
    }

    /// Total thread slots across the device (`T_max` in the paper's
    /// Eq. 10).
    pub fn max_concurrent_threads(&self) -> u64 {
        self.num_sms as u64 * self.max_threads_per_sm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_shape() {
        let c = DeviceConfig::rtx3090();
        assert_eq!(c.num_sms, 82);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_concurrent_threads(), 82 * 1536);
    }

    #[test]
    fn tiny_is_smaller_than_3090() {
        let t = DeviceConfig::test_tiny();
        let b = DeviceConfig::rtx3090();
        assert!(t.max_concurrent_threads() < b.max_concurrent_threads());
    }
}
