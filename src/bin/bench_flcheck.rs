//! Self-benchmark for the flcheck static analyzer.
//!
//! Runs the full workspace scan a few times, keeps the best run, and
//! writes `results/BENCH_flcheck.json` with files/sec plus per-pass
//! wall-clock (the `ScanStats` breakdown: per-file, call graph, taint,
//! panic reachability, determinism flow, guard escape, lock graph, cost
//! model, races, width, units, charge phase). The timings are
//! reporting-only — they never feed back into the analysis, so the
//! report stays byte-identical across runs and thread counts.
//!
//! **Throughput regression gate**: if
//! `results/bench_flcheck_baseline.json` exists, the measured files/sec
//! must stay above `0.4×` the committed baseline — a wide band, because
//! analyzer throughput is noisy across hosts, but tight enough to catch
//! an accidentally quadratic pass (the realistic failure mode is a 10×+
//! collapse, not a 20% drift). `--write-baseline` refreshes the file
//! after a deliberate change.
//!
//! ```text
//! cargo run --release --bin bench_flcheck -- [--root DIR] [--out FILE] [--iters N]
//!     [--baseline FILE] [--write-baseline]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Measured files/sec must clear this fraction of the committed
/// baseline.
const BASELINE_FLOOR: f64 = 0.4;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out = PathBuf::from("results/BENCH_flcheck.json");
    let mut baseline_path = PathBuf::from("results/bench_flcheck_baseline.json");
    let mut write_baseline = false;
    let mut iters = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a directory"),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out requires a file path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = PathBuf::from(v),
                None => return usage("--baseline requires a file path"),
            },
            "--write-baseline" => write_baseline = true,
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => iters = v,
                _ => return usage("--iters requires a positive integer"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_flcheck [--root DIR] [--out FILE] [--iters N] \
                     [--baseline FILE] [--write-baseline]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Best-of-N: the scan is pure, so the fastest run is the least
    // noise-contaminated estimate of the analyzer's cost.
    let mut best: Option<(flcheck::report::Report, flcheck::ScanStats)> = None;
    for _ in 0..iters {
        let (report, stats) = match flcheck::run_with_stats(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_flcheck: error scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        match &best {
            Some((_, b)) if b.total <= stats.total => {}
            _ => best = Some((report, stats)),
        }
    }
    let (report, stats) = best.expect("iters >= 1");

    let files = report.files_scanned;
    let secs = stats.total.as_secs_f64();
    let files_per_sec = if secs > 0.0 { files as f64 / secs } else { 0.0 };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"flcheck\",");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"files_scanned\": {files},");
    let _ = writeln!(json, "  \"findings\": {},", report.findings.len());
    let _ = writeln!(json, "  \"files_per_sec\": {files_per_sec:.1},");
    let _ = writeln!(json, "  \"wall_clock_seconds\": {{");
    let passes: [(&str, Duration); 13] = [
        ("per_file", stats.per_file),
        ("callgraph", stats.callgraph),
        ("taint", stats.taint),
        ("reach", stats.reach),
        ("detflow", stats.detflow),
        ("escape", stats.escape),
        ("lockgraph", stats.lockgraph),
        ("costmodel", stats.costmodel),
        ("races", stats.races),
        ("width", stats.width),
        ("units", stats.units),
        ("charge_phase", stats.charge_phase),
        ("total", stats.total),
    ];
    for (i, (name, d)) in passes.iter().enumerate() {
        let comma = if i + 1 == passes.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {:.6}{comma}", d.as_secs_f64());
    }
    json.push_str("  }\n}\n");

    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_flcheck: error writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{json}");

    if write_baseline {
        let baseline = format!(
            "{{\n  \"bench\": \"flcheck\",\n  \"files_scanned\": {files},\n  \
             \"files_per_sec\": {files_per_sec:.1}\n}}\n"
        );
        if let Err(e) = std::fs::write(&baseline_path, baseline) {
            eprintln!(
                "bench_flcheck: error writing {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!("baseline written to {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    // Throughput regression gate against the committed baseline.
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match extract_number(&text, "files_per_sec") {
            Some(base) => {
                let floor = base * BASELINE_FLOOR;
                if files_per_sec < floor {
                    eprintln!(
                        "bench_flcheck: FAIL throughput regression: {files_per_sec:.1} \
                         files/sec < {floor:.1} ({BASELINE_FLOOR}x baseline {base:.1})"
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "throughput gate: {files_per_sec:.1} files/sec >= {floor:.1} \
                     ({BASELINE_FLOOR}x baseline {base:.1}) OK"
                );
            }
            None => {
                eprintln!(
                    "bench_flcheck: FAIL baseline {} has no files_per_sec",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        },
        Err(_) => {
            println!(
                "throughput gate: no baseline at {} (run --write-baseline)",
                baseline_path.display()
            );
        }
    }
    ExitCode::SUCCESS
}

/// Pulls `"key": <number>` out of a flat JSON object without a parser.
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_flcheck: {msg} (see --help)");
    ExitCode::from(2)
}
