//! Guard-escape analysis (`guard-escape`) and the returned-guard map that
//! lets the lock graph follow guards across call boundaries.
//!
//! DESIGN §14 documented the v3 held-set model's false-negative window: a
//! guard that *escapes* its binding scope — returned to the caller, stored
//! in a struct, or passed by value — stays locked after the acquiring fn's
//! ranges say it died, so the lock graph missed any cycle or hot-path hold
//! built on the escaped guard. This pass closes the window in two tiers:
//!
//! - **Returned guards are followed, not flagged.** An acquisition in
//!   return position (a `return` statement or the fn's tail expression),
//!   or a `let`-bound guard the fn later returns by name, is recorded in
//!   [`EscapeInfo::returned`]. A fixpoint extends the map through
//!   return-position *calls*, so `fn a() { b() }` returning `b()`'s guard
//!   is itself a returner. [`crate::lockgraph`] consumes the map and
//!   synthesizes a held range at every call site of a returner, with the
//!   usual guard-binding/transient liveness rules applied to the call
//!   expression in the caller.
//! - **Escapes the lock graph cannot follow are flagged `guard-escape`.**
//!   Storing a guard through a field assignment or a struct-literal
//!   field, or passing it by value to another fn (`drop` excepted),
//!   detaches its lifetime from any token range the analysis can model —
//!   so the site must be rewritten (pass `&Mutex`, return the guard, or
//!   scope it) or justified with `allow(guard-escape)`.
//!
//! Known limits (documented in DESIGN §15): rebinding (`let h = g;`),
//! guards smuggled inside constructed values (`Some(g)` is caught as
//! pass-by-value into `Some`, but `(g, x)` tuples are not), and
//! conditional tails (`match` arms) are followed only when the arm is a
//! plain block tail. Bare acquisitions on fn parameters stay exempt, as
//! in the held-set model: they alias a lock the caller already names.

use crate::callgraph::{hop, CallGraph, NodeId};
use crate::lexer::{TokKind, Token};
use crate::lockgraph::crate_of;
use crate::parse::{FnItem, ParsedFile};
use crate::report::Finding;
use crate::rules::{find_acquisitions, Acquisition};
use crate::source::match_brace;
use std::collections::{BTreeMap, BTreeSet};

/// Result of the escape pass, consumed by the lock graph.
#[derive(Debug, Default)]
pub struct EscapeInfo {
    /// Guards a fn hands to its caller: node -> set of
    /// `(crate-qualified lock name, unqualified label)` pairs.
    pub returned: BTreeMap<NodeId, BTreeSet<(String, String)>>,
}

/// Runs the guard-escape pass: pushes `guard-escape` findings and returns
/// the returned-guard map.
pub fn analyze(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) -> EscapeInfo {
    let mut returned: BTreeMap<NodeId, BTreeSet<(String, String)>> = BTreeMap::new();

    for (fi, pf) in files.iter().enumerate() {
        let kr = crate_of(&pf.src.rel_path);
        let toks = &pf.src.tokens;
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for a in find_acquisitions(&pf.src, f.body_start, f.body_end) {
                if f.nested.iter().any(|&(s, e)| a.idx >= s && a.idx < e) {
                    continue;
                }
                if a.bare && (a.name == "self" || f.params.iter().any(|p| *p == a.name)) {
                    continue; // aliases a lock the caller names
                }
                let close = match_brace(toks, a.idx + 1);
                match &a.guard_var {
                    Some(v) => {
                        if returns_var(toks, f.body_start, f.body_end, v) {
                            returned
                                .entry((fi, gi))
                                .or_default()
                                .insert((format!("{kr}::{}", a.name), a.name.clone()));
                        } else {
                            find_var_escapes(files, (fi, gi), &a, v, out);
                        }
                    }
                    None => {
                        // Chain continues (`m.lock().len()`): the guard is
                        // consumed inside the statement, never escapes.
                        if toks.get(close).is_some_and(|t| t.is_op(".")) {
                            continue;
                        }
                        // A prefix operator (`*self.m.lock()`, `&..`)
                        // produces a derived value — a deref copy or a
                        // borrow that dies with the statement — not the
                        // guard itself.
                        if expr_is_prefixed(toks, a.idx) {
                            continue;
                        }
                        if stmt_is_return(toks, a.idx) || expr_is_tail(toks, close, f.body_end) {
                            returned
                                .entry((fi, gi))
                                .or_default()
                                .insert((format!("{kr}::{}", a.name), a.name.clone()));
                        } else if let Some(callee) = whole_arg_callee(f, toks, a.idx, close) {
                            let msg = format!(
                                "temporary guard of lock `{}` passed by value to \
                                 `{callee}` in `{}`: the lock graph cannot follow it",
                                a.name, f.name
                            );
                            push(out, files, (fi, gi), a.line, msg);
                        }
                    }
                }
            }
        }
    }

    // Returned guards propagate through return-position calls: a fn whose
    // return value *is* a returner's call result hands the same guard up.
    loop {
        let mut changed = false;
        for (fi, pf) in files.iter().enumerate() {
            let toks = &pf.src.tokens;
            for (gi, f) in pf.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                for e in graph.out((fi, gi)) {
                    if e.to == (fi, gi) {
                        continue;
                    }
                    let Some(rets) = returned.get(&e.to) else {
                        continue;
                    };
                    if rets.is_empty() {
                        continue;
                    }
                    let cs = &f.calls[e.call];
                    let close = match_brace(toks, cs.name_idx + 1);
                    if toks
                        .get(close)
                        .is_some_and(|t| t.is_op(".") || t.is_op("?"))
                    {
                        continue; // chain continues: guard consumed here
                    }
                    if expr_is_prefixed(toks, cs.name_idx) {
                        continue; // `*b()` returns a deref copy, not the guard
                    }
                    if !(stmt_is_return(toks, cs.name_idx) || expr_is_tail(toks, close, f.body_end))
                    {
                        continue;
                    }
                    let add = rets.clone();
                    let cur = returned.entry((fi, gi)).or_default();
                    let before = cur.len();
                    cur.extend(add);
                    changed |= cur.len() != before;
                }
            }
        }
        if !changed {
            break;
        }
    }

    EscapeInfo { returned }
}

/// Reports escapes of a `let`-bound guard `v` that detach it from its
/// binding scope: struct-literal fields, field assignments, and
/// pass-by-value call arguments.
fn find_var_escapes(
    files: &[ParsedFile],
    n: NodeId,
    a: &Acquisition,
    v: &str,
    out: &mut Vec<Finding>,
) {
    let pf = &files[n.0];
    let f = &pf.fns[n.1];
    let toks = &pf.src.tokens;
    let limit = f.body_end.min(toks.len());
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();

    for j in a.idx..limit {
        if f.nested.iter().any(|&(s, e)| j >= s && j < e) {
            continue;
        }
        if !toks[j].is_ident(v) {
            continue;
        }
        // `field: v` in a struct literal (`:` with a field name before it;
        // a `let x: T = ..` ascription is not a store).
        if j >= 2
            && toks[j - 1].is_op(":")
            && toks[j - 2].kind == TokKind::Ident
            && !stmt_starts_with(toks, j, "let")
        {
            if seen.insert((toks[j].line, "struct")) {
                let msg = format!(
                    "guard `{v}` (lock `{}`) stored in struct field `{}` in `{}`: \
                     the lock graph cannot follow it",
                    a.name,
                    toks[j - 2].text,
                    f.name
                );
                push(out, files, n, toks[j].line, msg);
            }
        } else if is_struct_shorthand(toks, j) {
            // `Name { .., v, .. }` — field-init shorthand stores `v` into a
            // field of the same name.
            if seen.insert((toks[j].line, "struct")) {
                let msg = format!(
                    "guard `{v}` (lock `{}`) stored in struct field `{v}` \
                     (init shorthand) in `{}`: the lock graph cannot follow it",
                    a.name, f.name
                );
                push(out, files, n, toks[j].line, msg);
            }
        } else if j >= 1 && toks[j - 1].is_op("=") && assign_target_has_field(toks, j - 1) {
            // `place.field = v` — assignment writing through a field.
            if seen.insert((toks[j].line, "assign")) {
                let msg = format!(
                    "guard `{v}` (lock `{}`) stored through a field assignment \
                     in `{}`: the lock graph cannot follow it",
                    a.name, f.name
                );
                push(out, files, n, toks[j].line, msg);
            }
        }
    }

    // Whole-argument pass-by-value: `v` alone as a call argument moves the
    // guard into the callee (`drop(v)` is the sanctioned early release).
    for c in &f.calls {
        if c.callee == "drop" || c.name_idx < a.idx {
            continue;
        }
        for &(s, e) in &c.args {
            if e - s == 1 && toks[s].is_ident(v) && seen.insert((toks[s].line, "arg")) {
                let msg = format!(
                    "guard `{v}` (lock `{}`) passed by value to `{}` in `{}`: \
                     the lock graph cannot follow it",
                    a.name, c.callee, f.name
                );
                push(out, files, n, toks[s].line, msg);
            }
        }
    }
}

/// Pushes one `guard-escape` finding (single-hop chain of the escaping
/// fn), honoring `allow(guard-escape)`.
fn push(out: &mut Vec<Finding>, files: &[ParsedFile], n: NodeId, line: u32, message: String) {
    let pf = &files[n.0];
    if pf.src.is_allowed("guard-escape", line) {
        return;
    }
    out.push(Finding::with_chain(
        "guard-escape",
        &pf.src.rel_path,
        line,
        message,
        vec![hop(files, n)],
    ));
}

/// True when the fn body returns variable `v` by name: a `return v;` /
/// `return v }` statement or `v` as the tail expression.
fn returns_var(toks: &[Token], body_start: usize, body_end: usize, v: &str) -> bool {
    let limit = body_end.min(toks.len());
    for i in body_start..limit.saturating_sub(1) {
        if toks[i].is_ident("return")
            && toks[i + 1].is_ident(v)
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_op(";") || t.text == "}")
        {
            return true;
        }
    }
    limit >= body_start + 2 && toks[limit - 2].is_ident(v)
}

/// True when the statement containing token `idx` starts with `return`.
fn stmt_is_return(toks: &[Token], idx: usize) -> bool {
    stmt_starts_with(toks, idx, "return")
}

/// True when the expression containing token `idx` starts with a prefix
/// operator (`*`, `&`, `!`, `-`): its value is derived from the guard —
/// a deref copy or a borrow — not the guard itself.
fn expr_is_prefixed(toks: &[Token], idx: usize) -> bool {
    let mut k = idx;
    while k > 0 {
        let t = &toks[k - 1];
        if (t.kind == TokKind::Op && t.text == ";") || t.text == "{" || t.text == "}" {
            break;
        }
        k -= 1;
    }
    if toks.get(k).is_some_and(|t| t.is_ident("return")) {
        k += 1;
    }
    toks.get(k).is_some_and(|t| t.kind == TokKind::Op)
}

/// True when an expression ending at `close` (one past its last token) is
/// the fn's tail: only block-closing braces remain before the body's final
/// `}` at `body_end - 1`.
fn expr_is_tail(toks: &[Token], close: usize, body_end: usize) -> bool {
    let limit = body_end.min(toks.len());
    if close >= limit {
        return false;
    }
    toks[close..limit - 1].iter().all(|t| t.text == "}")
}

/// When the whole expression `[acq_idx..close)` is exactly one argument of
/// an enclosing call, returns that callee's name: the guard temporary is
/// moved into the call. An argument starting with a prefix operator
/// (`take(&mut m.lock())`) passes a borrow or derived value instead, and
/// the temporary still dies at the statement end.
fn whole_arg_callee<'a>(
    f: &'a FnItem,
    toks: &[Token],
    acq_idx: usize,
    close: usize,
) -> Option<&'a str> {
    for c in &f.calls {
        if c.name_idx >= acq_idx || c.callee == "drop" {
            continue;
        }
        for &(s, e) in &c.args {
            if s <= acq_idx && e == close && toks[s].kind != TokKind::Op {
                return Some(&c.callee);
            }
        }
    }
    None
}

/// True when the assignment `= v` whose `=` sits at `eq_idx` writes
/// through a field access (`place.field = v`) rather than binding or
/// re-assigning a plain local.
fn assign_target_has_field(toks: &[Token], eq_idx: usize) -> bool {
    let mut k = eq_idx;
    let mut has_dot = false;
    while k > 0 {
        let t = &toks[k - 1];
        if (t.kind == TokKind::Op && t.text == ";") || t.text == "{" || t.text == "}" {
            break;
        }
        if t.is_op(".") {
            has_dot = true;
        }
        if t.is_ident("let") {
            return false;
        }
        k -= 1;
    }
    has_dot
}

/// True when token `j` is a field-init shorthand inside a struct literal:
/// `Name { .., v, .. }`. The variable must sit directly between literal
/// delimiters (`{`/`,` before, `,`/`}` after), and the enclosing brace
/// group must open right after a capitalized ident (the struct name) —
/// which is what separates a literal from a plain block or match body,
/// where a bare trailing `v` is a tail expression, not a store.
fn is_struct_shorthand(toks: &[Token], j: usize) -> bool {
    if j == 0 || j + 1 >= toks.len() {
        return false;
    }
    let before_ok = toks[j - 1].text == "{" || toks[j - 1].is_op(",");
    let after_ok = toks[j + 1].is_op(",") || toks[j + 1].text == "}";
    if !before_ok || !after_ok {
        return false;
    }
    // Walk left to the `{` opening the enclosing group.
    let mut depth = 0u32;
    let mut k = j;
    loop {
        if k == 0 {
            return false;
        }
        k -= 1;
        if toks[k].text == "}" {
            depth += 1;
        } else if toks[k].text == "{" {
            if depth == 0 {
                break;
            }
            depth -= 1;
        }
    }
    k >= 1
        && toks[k - 1].kind == TokKind::Ident
        && toks[k - 1]
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
}

/// True when the statement containing token `idx` starts with keyword
/// `kw` (tells a `let x: T = ..` ascription from a struct-literal field).
fn stmt_starts_with(toks: &[Token], idx: usize, kw: &str) -> bool {
    let mut k = idx;
    while k > 0 {
        let t = &toks[k - 1];
        if (t.kind == TokKind::Op && t.text == ";") || t.text == "{" || t.text == "}" {
            break;
        }
        k -= 1;
    }
    toks.get(k).is_some_and(|t| t.is_ident(kw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> (Vec<Finding>, EscapeInfo) {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        let info = analyze(&parsed, &graph, &mut out);
        out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
        (out, info)
    }

    #[test]
    fn tail_and_return_guards_are_followed_not_flagged() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn acquire(&self) -> MutexGuard<'_, u32> {
        self.m.lock()
    }
    fn acquire_explicit(&self) -> MutexGuard<'_, u32> {
        return self.m.lock();
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        let rets: Vec<_> = info.returned.values().flatten().collect();
        assert_eq!(rets.len(), 2, "{rets:?}");
        assert!(
            rets.iter().all(|(q, l)| q == "core::m" && l == "m"),
            "{rets:?}"
        );
    }

    #[test]
    fn let_bound_guard_returned_by_name_is_followed() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn acquire(&self) -> MutexGuard<'_, u32> {
        let g = self.m.lock();
        g
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(info.returned.len(), 1, "{info:?}");
    }

    #[test]
    fn return_position_calls_propagate_the_guard_upward() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn acquire(&self) -> MutexGuard<'_, u32> {
        self.m.lock()
    }
    fn acquire_via(&self) -> MutexGuard<'_, u32> {
        self.acquire()
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(info.returned.len(), 2, "{info:?}");
        assert!(
            info.returned
                .values()
                .all(|s| s.contains(&("core::m".to_string(), "m".to_string()))),
            "{info:?}"
        );
    }

    #[test]
    fn stored_and_passed_guards_are_flagged() {
        let src = "\
struct P { m: Mutex<u32> }
struct S<'a> { g: MutexGuard<'a, u32> }
impl P {
    fn store(&self, s: &mut S<'_>) {
        let g = self.m.lock();
        s.held = g;
    }
    fn literal(&self) -> S<'_> {
        let g = self.m.lock();
        S { g: g }
    }
    fn pass(&self) {
        let g = self.m.lock();
        consume(g);
    }
}
fn consume(_g: MutexGuard<'_, u32>) {}
";
        let (out, _) = run(&[("crates/core/src/x.rs", src)]);
        let got: Vec<(u32, &str)> = out
            .iter()
            .map(|f| {
                (
                    f.line,
                    if f.message.contains("struct field") {
                        "struct"
                    } else if f.message.contains("field assignment") {
                        "assign"
                    } else {
                        "arg"
                    },
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![(6, "assign"), (10, "struct"), (14, "arg")],
            "{out:?}"
        );
        assert!(out.iter().all(|f| f.rule == "guard-escape"));
        assert_eq!(out[2].chain, vec!["pass (crates/core/src/x.rs:12)"]);
    }

    #[test]
    fn field_init_shorthand_is_flagged_but_block_tail_is_not() {
        let src = "\
struct P { m: Mutex<u32> }
struct S<'a> { g: MutexGuard<'a, u32> }
impl P {
    fn shorthand(&self) -> S<'_> {
        let g = self.m.lock();
        S { g }
    }
    fn tail(&self) -> MutexGuard<'_, u32> {
        let g = self.m.lock();
        g
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6);
        assert!(
            out[0].message.contains("init shorthand"),
            "{}",
            out[0].message
        );
        // The bare block tail in `tail` is a return-by-name: followed via
        // EscapeInfo, never flagged.
        assert_eq!(info.returned.len(), 1, "{info:?}");
    }

    #[test]
    fn transient_guard_passed_whole_as_argument_is_flagged() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn register(&self) {
        watch(self.m.lock());
    }
}
fn watch(_g: MutexGuard<'_, u32>) {}
";
        let (out, _) = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(
            out[0].message.contains("passed by value to `watch`"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].chain, vec!["register (crates/core/src/x.rs:3)"]);
    }

    #[test]
    fn drop_and_chain_consumption_are_not_escapes() {
        let src = "\
struct P { m: Mutex<Vec<u32>> }
impl P {
    fn fine(&self) -> usize {
        let g = self.m.lock();
        let n = g.len();
        drop(g);
        let k = self.m.lock().len();
        n + k
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert!(info.returned.is_empty(), "{info:?}");
    }

    #[test]
    fn deref_and_borrow_of_the_guard_are_not_escapes() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn read_copy(&self) -> u32 {
        *self.m.lock()
    }
    fn take_value(&self) -> u32 {
        std::mem::take(&mut self.m.lock())
    }
    fn read_explicit(&self) -> u32 {
        return *self.m.lock();
    }
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert!(info.returned.is_empty(), "{info:?}");
    }

    #[test]
    fn bare_param_acquisitions_stay_exempt() {
        let src = "\
fn lock_helper(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock()
}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert!(info.returned.is_empty(), "{info:?}");
    }

    #[test]
    fn allow_suppresses_the_finding() {
        let src = "\
struct P { m: Mutex<u32> }
impl P {
    fn pass(&self) {
        let g = self.m.lock();
        // flcheck: allow(guard-escape) — handoff, released by consumer
        consume(g);
    }
}
fn consume(_g: MutexGuard<'_, u32>) {}
";
        let (out, _) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = "\
struct P { m: Mutex<u32> }
#[cfg(test)]
mod tests {
    #[test]
    fn t(p: &super::P) {
        consume(p.m.lock());
    }
}
fn consume(_g: MutexGuard<'_, u32>) {}
";
        let (out, info) = run(&[("crates/core/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
        assert!(info.returned.is_empty(), "{info:?}");
    }
}
