//! Ablation bench: binary square-and-multiply vs the sliding-window
//! modular exponentiation the paper integrates (Sec. IV-A3: complexity
//! `e` → `log_{2^b} e`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpint::{modpow, Natural};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow");
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    for bits in [512u32, 1024, 2048] {
        let mut modulus = mpint::random::random_bits(&mut rng, bits);
        modulus.set_bit(0, true);
        let base = &mpint::random::random_bits(&mut rng, bits - 1) % &modulus;
        let exp = mpint::random::random_bits(&mut rng, bits);

        group.bench_with_input(BenchmarkId::new("binary", bits), &bits, |bench, _| {
            bench.iter(|| {
                black_box(
                    modpow::mod_pow_binary(black_box(&base), black_box(&exp), &modulus).unwrap(),
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sliding_window", bits),
            &bits,
            |bench, _| {
                bench.iter(|| {
                    black_box(modpow::mod_pow(black_box(&base), black_box(&exp), &modulus).unwrap())
                })
            },
        );
    }

    // Short public exponents (RSA encryption path).
    let mut modulus = mpint::random::random_bits(&mut rng, 1024);
    modulus.set_bit(0, true);
    let base = &mpint::random::random_bits(&mut rng, 1000) % &modulus;
    let e = Natural::from(65_537u64);
    group.bench_function("sliding_window/e=65537@1024", |bench| {
        bench.iter(|| black_box(modpow::mod_pow(black_box(&base), &e, &modulus).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_modpow
}
criterion_main!(benches);
