//! Deterministic dataset generators with the profiles of the paper's
//! evaluation datasets (Table II).
//!
//! | Dataset   | Instances | Features  | Character        |
//! |-----------|-----------|-----------|------------------|
//! | RCV1      | 677,399   | 47,236    | sparse text      |
//! | Avazu     | 1,719,304 | 1,000,000 | very sparse CTR  |
//! | Synthetic | 100,000   | 10,000    | dense (LEAF)     |
//!
//! Each generator plants a sparse ground-truth linear concept and labels
//! instances by a noisy sigmoid threshold, so logistic models converge
//! and convergence-bias measurements (paper Table VII) are meaningful.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::{Dataset, SparseRow};

/// Declarative description of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Base name; the scale is appended to the generated dataset's name.
    pub name: &'static str,
    /// Instance count at scale 1.0.
    pub instances: usize,
    /// Feature dimension (not scaled — geometry drives the experiments).
    pub features: usize,
    /// Mean non-zeros per row.
    pub nnz_per_row: usize,
    /// Label-noise rate.
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// RCV1 profile (text categorization; ~0.16% density).
    pub fn rcv1() -> Self {
        DatasetSpec {
            name: "rcv1-like",
            instances: 677_399,
            features: 47_236,
            nnz_per_row: 76,
            label_noise: 0.02,
            seed: 0x5CB1,
        }
    }

    /// Avazu profile (click-through-rate; ~0.002% density, hashed
    /// categorical features with unit values).
    pub fn avazu() -> Self {
        DatasetSpec {
            name: "avazu-like",
            instances: 1_719_304,
            features: 1_000_000,
            nnz_per_row: 21,
            label_noise: 0.05,
            seed: 0xAA2A,
        }
    }

    /// LEAF-Synthetic profile (dense classification).
    pub fn synthetic() -> Self {
        DatasetSpec {
            name: "synthetic-leaf",
            instances: 100_000,
            features: 10_000,
            nnz_per_row: 10_000, // dense
            label_noise: 0.01,
            seed: 0x5E17,
        }
    }

    /// All three specs in the paper's order.
    pub fn all() -> [DatasetSpec; 3] {
        [Self::rcv1(), Self::avazu(), Self::synthetic()]
    }

    /// Generates the dataset scaled to `scale · instances` rows
    /// (`0 < scale <= 1`), with at least 8 rows.
    pub fn generate(&self, scale: f64) -> Dataset {
        // Documented parameter range.
        // flcheck: allow(pf-assert)
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.instances as f64 * scale) as usize).max(8);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Planted concept: a sparse weight vector over a "relevant" subset
        // of features so sparse rows still usually touch signal.
        let relevant = (self.features / 10).clamp(8, 4096);
        let concept: Vec<(u32, f64)> = (0..relevant)
            .map(|i| {
                let idx = (i * self.features / relevant) as u32;
                (idx, rng.gen_range(-2.0..2.0))
            })
            .collect();
        // Ordered map: the planted concept feeds labels (result content),
        // so lookups — and any future iteration — must be hash-order-free.
        let concept_dense: std::collections::BTreeMap<u32, f64> = concept.into_iter().collect();

        let dense = self.nnz_per_row >= self.features;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row = if dense {
                SparseRow::new(
                    (0..crate::count_u32(self.features)).collect(),
                    (0..self.features)
                        .map(|_| rng.gen_range(-1.0..1.0))
                        .collect(),
                )
            } else {
                // Sample distinct indices; geometric-ish skew toward low
                // indices mimics term-frequency distributions.
                let mut idx: Vec<u32> = (0..self.nnz_per_row)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        ((u * u) * self.features as f64) as u32
                    })
                    .collect();
                idx.sort_unstable();
                idx.dedup();
                let values = idx.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
                SparseRow::new(idx, values)
            };

            let margin: f64 = row
                .indices
                .iter()
                .zip(&row.values)
                .filter_map(|(i, v)| concept_dense.get(i).map(|w| w * v))
                .sum();
            let p = 1.0 / (1.0 + (-margin).exp());
            let mut label = if p > 0.5 { 1.0 } else { 0.0 };
            if rng.gen::<f64>() < self.label_noise {
                label = 1.0 - label;
            }
            rows.push(row);
            labels.push(label);
        }

        Dataset {
            name: format!("{}@{scale}", self.name),
            num_features: self.features,
            rows,
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table2_shapes() {
        let r = DatasetSpec::rcv1();
        assert_eq!(r.features, 47_236);
        assert_eq!(r.instances, 677_399);
        let a = DatasetSpec::avazu();
        assert_eq!(a.features, 1_000_000);
        let s = DatasetSpec::synthetic();
        assert_eq!(s.features, 10_000);
        assert_eq!(s.nnz_per_row, s.features);
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = DatasetSpec::rcv1().generate(0.0005);
        let d2 = DatasetSpec::rcv1().generate(0.0005);
        assert_eq!(d1.rows.len(), d2.rows.len());
        assert_eq!(d1.rows[0], d2.rows[0]);
        assert_eq!(d1.labels, d2.labels);
    }

    #[test]
    fn scale_controls_instances() {
        let spec = DatasetSpec::synthetic();
        let small = spec.generate(0.001);
        assert_eq!(small.len(), 100);
        assert_eq!(small.num_features, 10_000);
    }

    #[test]
    fn sparse_rows_have_expected_density() {
        let d = DatasetSpec::rcv1().generate(0.001);
        let mean = d.mean_nnz();
        assert!(mean > 30.0 && mean < 80.0, "mean nnz {mean}");
        assert!(d.density() < 0.01);
    }

    #[test]
    fn dense_rows_are_full() {
        let d = DatasetSpec::synthetic().generate(0.0002);
        assert_eq!(d.rows[0].nnz(), 10_000);
        assert!((d.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_are_binary_and_balancedish() {
        let d = DatasetSpec::synthetic().generate(0.002);
        assert!(d.labels.iter().all(|&l| l == 0.0 || l == 1.0));
        let rate = d.positive_rate();
        assert!(rate > 0.15 && rate < 0.85, "positive rate {rate}");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        DatasetSpec::rcv1().generate(0.0);
    }
}
