//! Closure-capture race detection for the work-stealing pool.
//!
//! The workspace's parallelism all funnels through the hand-rolled rayon
//! shim: closures handed to `spawn` or to combinators downstream of the
//! `par_iter` family run concurrently on pool workers, so any shared
//! mutable state they capture is a data race unless synchronized. The
//! item parser records every closure with its capture list and
//! per-capture write classification ([`crate::parse::ClosureSite`]);
//! this pass identifies which of those closures are *pool-scheduled* and
//! applies three rules to their captures:
//!
//! - **race-shared-mut** — a pool-scheduled closure performs a *binding*
//!   write to a capture (`x = ..`, `x += ..`, or takes `&mut x`):
//!   concurrently-running instances alias the same place mutably. A
//!   `par_iter` body closure runs as many concurrent instances, so a
//!   single mutating closure suffices.
//! - **race-unsynced-write** — an *interior* write through a capture
//!   (`x.field = ..`, `x.push(..)`, `x[i] = ..`) with no `Mutex` /
//!   `RwLock` guard covering the write: exempt when a lock acquisition
//!   (per [`crate::rules::find_acquisitions`], with
//!   [`crate::lockgraph::live_end`] liveness) covers the write site or
//!   the capture itself is the lock (`x.lock().push(..)`). The write
//!   chain is followed interprocedurally: a capture passed whole-arg
//!   (optionally `&` / `&mut`-prefixed) or as a method receiver into a
//!   resolved callee is checked for writes to the corresponding
//!   parameter, recursively to a small depth.
//! - **race-cell-steal** — a single-threaded interior-mutability value
//!   (`Cell`, `RefCell`, `Rc`) captured by a pool-scheduled closure:
//!   these types are not `Sync`, and even when the borrow checker is
//!   satisfied via `unsafe` shims, crossing the steal boundary breaks
//!   their aliasing contract.
//!
//! Pool scheduling is identified by *name*, mirroring
//! `lockgraph::BLOCKING_CALLS`: a closure is pool-scheduled when it is
//! an argument of a `spawn(..)` call, an argument of a method whose
//! receiver chain contains a `par_iter`-family adapter, or a let-bound
//! closure passed by name into either. `install(..)` and the `scope`
//! closure itself run on the calling thread and are not scheduled.
//! Soundness boundary (DESIGN §17): closures flowing into *unresolved,
//! non-pool* calls (std iterator adapters, `Option::map`, ...) are
//! assumed serially executed and not flagged — the pool entry points are
//! all first-party or name-matched, so the concurrent set is closed.

use crate::callgraph::{hop, CallGraph, Edge, NodeId};
use crate::lexer::{TokKind, Token};
use crate::lockgraph::live_end;
use crate::parse::{Capture, CaptureWrite, ClosureSite, FnItem, ParsedFile, MUT_METHODS};
use crate::report::Finding;
use crate::rules::{find_acquisitions, Acquisition};
use std::collections::BTreeSet;

/// Adapters that move iteration onto the pool: a closure handed to any
/// method whose receiver chain contains one of these runs concurrently.
const PAR_DRIVERS: &[&str] = &[
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_iter",
    "par_iter_mut",
];

/// Types whose values must not cross the steal boundary.
const CELL_TYPES: &[&str] = &["Cell", "Rc", "RefCell"];

/// Max depth for following a capture through whole-arg parameter passing.
const FOLLOW_DEPTH: usize = 4;

/// One pool-scheduled closure: the closure plus its scheduling call.
struct Scheduled<'a> {
    closure: &'a ClosureSite,
    /// Callee name of the scheduling call (`spawn`, `map`, ...).
    via: &'a str,
    /// 1-based line of the scheduling call.
    via_line: u32,
}

/// Runs the three closure-capture race rules.
pub fn check_races(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    for (fi, pf) in files.iter().enumerate() {
        let cells = cell_bindings(&pf.src.tokens);
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for sched in scheduled_closures(pf, f) {
                check_one(files, graph, (fi, gi), pf, f, &sched, &cells, out);
            }
        }
    }
}

/// Identifiers bound to `Cell` / `RefCell` / `Rc` values anywhere in the
/// file: type ascriptions (`x: RefCell<..>`) and constructor bindings
/// (`let x = RefCell::new(..)`).
fn cell_bindings(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !CELL_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `name : Cell <` (field or local ascription).
        if i >= 2
            && toks[i - 1].is_op(":")
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_op("<"))
        {
            out.insert(toks[i - 2].text.clone());
        }
        // `let [mut] name = Cell :: new`.
        if i >= 2
            && toks[i - 1].is_op("=")
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_op("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("new"))
        {
            out.insert(toks[i - 2].text.clone());
        }
    }
    out
}

/// Closures of `f` that are scheduled onto the pool: direct closure
/// arguments of `spawn(..)` / par-driver chains, plus let-bound closures
/// passed by name into the same entry points.
fn scheduled_closures<'a>(pf: &'a ParsedFile, f: &'a FnItem) -> Vec<Scheduled<'a>> {
    let toks = &pf.src.tokens;
    let mut out = Vec::new();
    for cs in &f.calls {
        let is_pool = cs.callee == "spawn"
            || (cs.is_method
                && cs.recv.is_some_and(|(s, e)| {
                    toks[s..e.min(toks.len())]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && PAR_DRIVERS.contains(&t.text.as_str()))
                }));
        if !is_pool {
            continue;
        }
        for &(s, e) in &cs.args {
            // A closure literal starting inside this argument span.
            for c in &f.closures {
                if c.start >= s && c.start < e {
                    out.push(Scheduled {
                        closure: c,
                        via: &cs.callee,
                        via_line: cs.line,
                    });
                }
            }
            // A let-bound closure passed by name.
            if e == s + 1 && toks[s].kind == TokKind::Ident {
                for c in &f.closures {
                    if c.bound_name.as_deref() == Some(toks[s].text.as_str()) {
                        out.push(Scheduled {
                            closure: c,
                            via: &cs.callee,
                            via_line: cs.line,
                        });
                    }
                }
            }
        }
    }
    // Nested closures inside a scheduled closure are scheduled too only
    // if they hit their own pool entry, which the call scan above already
    // covers; dedup by closure start in case both paths matched.
    out.sort_by_key(|s| (s.closure.start, s.via_line));
    out.dedup_by_key(|s| s.closure.start);
    out
}

/// Applies the three rules to one scheduled closure.
#[allow(clippy::too_many_arguments)]
fn check_one(
    files: &[ParsedFile],
    graph: &CallGraph,
    n: NodeId,
    pf: &ParsedFile,
    f: &FnItem,
    sched: &Scheduled<'_>,
    cells: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let rel = &pf.src.rel_path;
    let c = sched.closure;
    let acqs = find_acquisitions(&pf.src, c.body_start, c.body_end);
    for cap in &c.captures {
        let base_chain = |w: Option<&CaptureWrite>| {
            let mut chain = vec![
                format!("capture of `{}` ({rel}:{})", cap.name, cap.line),
                format!(
                    "scheduled onto the pool via `{}` ({rel}:{})",
                    sched.via, sched.via_line
                ),
            ];
            if let Some(w) = w {
                chain.push(format!("write: {} ({rel}:{})", w.desc, w.line));
            }
            chain
        };
        // race-cell-steal: a cell-typed capture crossing the boundary.
        if cells.contains(&cap.name) && !pf.src.is_allowed("race-cell-steal", cap.line) {
            out.push(Finding::with_chain(
                "race-cell-steal",
                rel,
                cap.line,
                format!(
                    "single-threaded interior-mutability value `{}` (Cell/RefCell/Rc) \
                     captured by a closure scheduled onto the pool via `{}` in `{}`",
                    cap.name, sched.via, f.name
                ),
                base_chain(None),
            ));
        }
        for w in &cap.writes {
            if w.direct {
                // race-shared-mut: a binding write races against every
                // concurrent instance of the closure.
                if !pf.src.is_allowed("race-shared-mut", w.line) {
                    out.push(Finding::with_chain(
                        "race-shared-mut",
                        rel,
                        w.line,
                        format!(
                            "captured binding `{}` mutated ({}) inside a closure scheduled \
                             onto the pool via `{}` in `{}`: concurrent instances alias it \
                             mutably",
                            cap.name, w.desc, sched.via, f.name
                        ),
                        base_chain(Some(w)),
                    ));
                }
            } else if !write_is_synchronized(&pf.src.tokens, &acqs, &cap.name, w.idx, c.body_end)
                && !pf.src.is_allowed("race-unsynced-write", w.line)
            {
                // race-unsynced-write: an unguarded interior write.
                out.push(Finding::with_chain(
                    "race-unsynced-write",
                    rel,
                    w.line,
                    format!(
                        "unsynchronized write to captured `{}` ({}) inside a closure \
                         scheduled onto the pool via `{}` in `{}`: no lock guard covers \
                         the write",
                        cap.name, w.desc, sched.via, f.name
                    ),
                    base_chain(Some(w)),
                ));
            }
        }
        // Interprocedural: the capture handed whole-arg (or as receiver)
        // into a resolved callee that writes the corresponding parameter.
        check_interproc(files, graph, n, pf, f, sched, cap, &acqs, out);
    }
}

/// True when an interior write at token `idx` is covered by a lock: the
/// capture itself is the acquired lock (`x.lock().push(..)`), or any
/// acquisition's live range covers the write site (a guard held around
/// the statement).
fn write_is_synchronized(
    toks: &[Token],
    acqs: &[Acquisition],
    cap: &str,
    idx: usize,
    body_end: usize,
) -> bool {
    acqs.iter()
        .any(|a| a.name == cap || (a.idx <= idx && idx < live_end(toks, a, body_end)))
}

/// Follows captures through whole-arg / receiver passing into resolved
/// callees, flagging unguarded parameter writes with the full chain.
#[allow(clippy::too_many_arguments)]
fn check_interproc(
    files: &[ParsedFile],
    graph: &CallGraph,
    n: NodeId,
    pf: &ParsedFile,
    f: &FnItem,
    sched: &Scheduled<'_>,
    cap: &Capture,
    acqs: &[Acquisition],
    out: &mut Vec<Finding>,
) {
    let toks = &pf.src.tokens;
    let c = sched.closure;
    let rel = &pf.src.rel_path;
    for (ci, cs) in f.calls.iter().enumerate() {
        if cs.name_idx < c.body_start || cs.name_idx >= c.body_end {
            continue;
        }
        // Covered by a guard held around the call? Then the callee's
        // writes run under it.
        let guarded = acqs
            .iter()
            .any(|a| a.idx <= cs.name_idx && cs.name_idx < live_end(toks, a, c.body_end));
        if guarded {
            continue;
        }
        let edges: Vec<&Edge> = graph.out(n).iter().filter(|e| e.call == ci).collect();
        if edges.is_empty() {
            continue;
        }
        // Which callee parameter receives the capture?
        let mut targets: Vec<(NodeId, String)> = Vec::new();
        for e in &edges {
            let callee = &files[e.to.0].fns[e.to.1];
            let offset = usize::from(callee.is_method && cs.is_method);
            for (ai, &(s, arg_end)) in cs.args.iter().enumerate() {
                if whole_arg_is(toks, s, arg_end, &cap.name) {
                    if let Some(p) = callee.params.get(ai + offset) {
                        targets.push((e.to, p.clone()));
                    }
                }
            }
            // The capture as method receiver: `x.update(..)` writing self.
            if cs.is_method
                && callee.is_method
                && !MUT_METHODS.contains(&cs.callee.as_str())
                && cs
                    .recv
                    .is_some_and(|(s, e2)| whole_arg_is(toks, s, e2, &cap.name))
            {
                targets.push((e.to, "self".to_string()));
            }
        }
        for (to, param) in targets {
            let mut visited = BTreeSet::new();
            if let Some(tail) =
                param_write_chain(files, graph, to, &param, FOLLOW_DEPTH, &mut visited)
            {
                if pf.src.is_allowed("race-unsynced-write", cs.line) {
                    continue;
                }
                let mut chain = vec![
                    format!("capture of `{}` ({rel}:{})", cap.name, cap.line),
                    format!(
                        "scheduled onto the pool via `{}` ({rel}:{})",
                        sched.via, sched.via_line
                    ),
                    format!("passed to `{}` ({rel}:{})", cs.callee, cs.line),
                ];
                chain.extend(tail);
                out.push(Finding::with_chain(
                    "race-unsynced-write",
                    rel,
                    cs.line,
                    format!(
                        "captured `{}` passed from a pool-scheduled closure in `{}` into \
                         `{}`, which writes it without a lock guard",
                        cap.name, f.name, cs.callee
                    ),
                    chain,
                ));
            }
        }
    }
}

/// True when `[s, e)` is exactly `name`, optionally `&`- or
/// `&mut`-prefixed.
fn whole_arg_is(toks: &[Token], s: usize, e: usize, name: &str) -> bool {
    let mut s = s;
    if toks.get(s).is_some_and(|t| t.is_op("&")) {
        s += 1;
        if toks.get(s).is_some_and(|t| t.is_ident("mut")) {
            s += 1;
        }
    }
    e == s + 1 && toks.get(s).is_some_and(|t| t.is_ident(name))
}

/// Finds an unguarded write to `param` in `node`'s body, directly or via
/// recursive whole-arg pass-through (bounded depth, cycle-safe). Returns
/// the chain hops from `node` down to the write site.
fn param_write_chain(
    files: &[ParsedFile],
    graph: &CallGraph,
    node: NodeId,
    param: &str,
    depth: usize,
    visited: &mut BTreeSet<(NodeId, String)>,
) -> Option<Vec<String>> {
    if !visited.insert((node, param.to_string())) {
        return None;
    }
    let pf = &files[node.0];
    let f = &pf.fns[node.1];
    let toks = &pf.src.tokens;
    let acqs = find_acquisitions(&pf.src, f.body_start, f.body_end);
    // Direct / interior writes to the parameter in this body.
    let mut k = f.body_start;
    while k < f.body_end.min(toks.len()) {
        if let Some(&(_, nend)) = f.nested.iter().find(|&&(ns, ne)| k >= ns && k < ne) {
            k = nend;
            continue;
        }
        let t = &toks[k];
        // `let param = ..` shadows the parameter: the binding ident is
        // not a write, and later uses refer to the new local.
        if t.is_ident(param)
            && k > 0
            && (toks[k - 1].is_ident("let")
                || (toks[k - 1].is_ident("mut") && k > 1 && toks[k - 2].is_ident("let")))
        {
            break;
        }
        let is_use = t.is_ident(param)
            && !(k > 0 && (toks[k - 1].is_op(".") || toks[k - 1].is_op("::")))
            && !toks
                .get(k + 1)
                .is_some_and(|nx| nx.is_op("::") || nx.text == "(");
        if is_use {
            if let Some(w) = crate::parse::classify_capture_use(toks, k, f.body_end) {
                let synced =
                    !w.direct && write_is_synchronized(toks, &acqs, param, w.idx, f.body_end);
                if !synced {
                    return Some(vec![
                        hop(files, node),
                        format!("write: {} ({}:{})", w.desc, pf.src.rel_path, w.line),
                    ]);
                }
            }
        }
        k += 1;
    }
    // Pass-through: the parameter handed whole-arg to a deeper callee.
    if depth == 0 {
        return None;
    }
    for (ci, cs) in f.calls.iter().enumerate() {
        for e in graph.out(node).iter().filter(|e| e.call == ci) {
            let callee = &files[e.to.0].fns[e.to.1];
            let offset = usize::from(callee.is_method && cs.is_method);
            for (ai, &(s, arg_end)) in cs.args.iter().enumerate() {
                if !whole_arg_is(toks, s, arg_end, param) {
                    continue;
                }
                let Some(p) = callee.params.get(ai + offset) else {
                    continue;
                };
                if let Some(mut tail) = param_write_chain(files, graph, e.to, p, depth - 1, visited)
                {
                    let mut chain = vec![hop(files, node)];
                    chain.append(&mut tail);
                    return Some(chain);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_races(&parsed, &graph, &mut out);
        out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
        out
    }

    #[test]
    fn par_iter_binding_write_is_shared_mut() {
        let src = "\
fn total(items: &[u64]) -> u64 {
    let mut sum = 0u64;
    items.par_iter().for_each(|x| {
        sum += x;
    });
    sum
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        let hits: Vec<&Finding> = got.iter().filter(|f| f.rule == "race-shared-mut").collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`sum`"), "{}", hits[0].message);
        assert_eq!(hits[0].chain.len(), 3, "{:?}", hits[0].chain);
    }

    #[test]
    fn spawn_closure_push_without_lock_is_unsynced() {
        let src = "\
fn fanout(scope: &Scope, results: &SharedVec) {
    scope.spawn(move || {
        results.push(compute());
    });
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        let hits: Vec<&Finding> = got
            .iter()
            .filter(|f| f.rule == "race-unsynced-write")
            .collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn locked_write_is_synchronized() {
        let src = "\
fn fanout(scope: &Scope, results: &Shared) {
    scope.spawn(move || {
        results.lock().push(compute());
    });
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(
            got.iter().all(|f| f.rule != "race-unsynced-write"),
            "{got:?}"
        );
    }

    #[test]
    fn guard_held_around_write_is_synchronized() {
        let src = "\
fn fanout(scope: &Scope, table: &Shared, m: &M) {
    scope.spawn(move || {
        let g = m.lock();
        table.extend(g.batch());
    });
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(
            got.iter().all(|f| f.rule != "race-unsynced-write"),
            "{got:?}"
        );
    }

    #[test]
    fn refcell_capture_crossing_steal_boundary_is_flagged() {
        let src = "\
fn drive(items: &[u64]) {
    let cache = RefCell::new(Vec::new());
    items.par_iter().map(|x| {
        cache.borrow();
        x
    }).sum::<u64>();
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        let hits: Vec<&Finding> = got.iter().filter(|f| f.rule == "race-cell-steal").collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert!(hits[0].message.contains("`cache`"));
    }

    #[test]
    fn read_only_captures_are_clean() {
        let src = "\
fn map_all(items: &[u64], key: &Key) -> Vec<u64> {
    items.par_iter().map(|x| key.apply(x)).collect()
}
fn scoped(scope: &Scope, shared: &State, w: usize, f: &F) {
    scope.spawn(move || worker_loop(shared, w, f));
}
fn worker_loop(shared: &State, w: usize, f: &F) {}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn serial_iterator_closures_are_not_pool_scheduled() {
        let src = "\
fn serial(items: &[u64]) -> u64 {
    let mut acc = 0u64;
    items.iter().for_each(|x| {
        acc += x;
    });
    acc
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn let_bound_closure_passed_by_name_is_traced() {
        let src = "\
fn fanout(scope: &Scope) {
    let mut count = 0u64;
    let work = move || {
        count += 1;
    };
    scope.spawn(work);
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        let hits: Vec<&Finding> = got.iter().filter(|f| f.rule == "race-shared-mut").collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn interprocedural_write_through_helper_is_traced() {
        let src = "\
fn fanout(scope: &Scope, stats: &Stats) {
    scope.spawn(move || record(stats));
}
fn record(stats: &Stats) {
    stats.push(1);
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        let hits: Vec<&Finding> = got
            .iter()
            .filter(|f| f.rule == "race-unsynced-write")
            .collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 2);
        assert!(
            hits[0].chain.iter().any(|h| h.contains("record")),
            "{:?}",
            hits[0].chain
        );
    }

    #[test]
    fn interprocedural_locked_helper_is_clean() {
        let src = "\
fn fanout(scope: &Scope, stats: &Stats) {
    scope.spawn(move || record(stats));
}
fn record(stats: &Stats) {
    stats.lock().push(1);
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(
            got.iter().all(|f| f.rule != "race-unsynced-write"),
            "{got:?}"
        );
    }

    #[test]
    fn allow_suppresses_each_rule() {
        let src = "\
fn total(items: &[u64]) -> u64 {
    let mut sum = 0u64;
    items.par_iter().for_each(|x| {
        // flcheck: allow(race-shared-mut)
        sum += x;
    });
    sum
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t(items: &[u64]) {
        let mut sum = 0u64;
        items.par_iter().for_each(|x| { sum += x; });
    }
}
";
        let got = run(&[("crates/core/src/a.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }
}
