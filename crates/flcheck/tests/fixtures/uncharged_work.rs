//! Fixture: cost-model conformance violations.

// flcheck: mac-prim
fn mont_mul(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}

// flcheck: charge-sink
fn charge(ops: u64) -> u64 {
    ops
}

fn kernel(a: u64, b: u64) -> u64 {
    mont_mul(a, b)
}

pub fn charged_entry(a: u64, b: u64) -> u64 {
    charge(kernel(a, b))
}

pub fn uncharged_entry(a: u64, b: u64) -> u64 {
    kernel(a, b)
}

// flcheck: estimates(kernel, 2)
// flcheck: estimates(vanished_kernel, 2)
// flcheck: estimates(kernel, 5)
pub fn kernel_op_estimate() -> u64 {
    3
}
