//! Fixture-based end-to-end tests.
//!
//! Each fixture under `tests/fixtures/` is analyzed through
//! [`flcheck::check_file`] with a synthetic workspace path (the path
//! selects which rule families apply), and the findings are compared
//! against exact `(rule, line)` pairs. The `fixtures` directory is in
//! the walker's skip list, so these files never leak into a real scan —
//! they also need not compile.

use flcheck::check_file;

fn rules_and_lines(path: &str, src: &str) -> Vec<(String, u32)> {
    check_file(path, src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn ct_fixture_fires_every_ct_rule_at_exact_lines() {
    let src = include_str!("fixtures/ct_violations.rs");
    let got = rules_and_lines("crates/mpint/src/ct_fixture.rs", src);
    let want: Vec<(String, u32)> = [
        ("ct-branch", 5),       // `if` on the secret
        ("ct-compare", 5),      // `==` in its predicate
        ("ct-return", 6),       // early exit
        ("ct-compare", 8),      // `!=`
        ("ct-shortcircuit", 8), // `&&`
        ("ct-compare", 9),      // `.min()`
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn ct_findings_carry_the_given_path() {
    let src = include_str!("fixtures/ct_violations.rs");
    let findings = check_file("crates/mpint/src/ct_fixture.rs", src);
    assert!(!findings.is_empty());
    for f in &findings {
        assert_eq!(f.file, "crates/mpint/src/ct_fixture.rs");
    }
}

#[test]
fn pf_fixture_fires_every_panic_rule_at_exact_lines() {
    let src = include_str!("fixtures/pf_violations.rs");
    let got = rules_and_lines("crates/he/src/pf_fixture.rs", src);
    let want: Vec<(String, u32)> = [
        ("pf-unwrap", 4),
        ("pf-expect", 5),
        ("pf-assert", 6),
        ("pf-panic", 8),
        ("pf-index", 10),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want, "test-module panics must stay exempt");
}

#[test]
fn pf_rules_do_not_apply_outside_library_crates() {
    let src = include_str!("fixtures/pf_violations.rs");
    // The bench binary and tool sources are out of panic-freedom scope.
    assert_eq!(rules_and_lines("src/bin/bench_fixture.rs", src), vec![]);
}

#[test]
fn ld_fixture_fires_wait_per_file_and_cycle_via_the_workspace() {
    let src = include_str!("fixtures/ld_violations.rs");
    // Per-file analysis: only ld-wait remains (the old ld-order rule is
    // subsumed by the whole-workspace lock-cycle pass).
    let got = rules_and_lines("src/ld_fixture.rs", src);
    assert_eq!(got, vec![("ld-wait".to_string(), 19)]);

    // Workspace analysis: the declared `table < counters` order plus the
    // observed inversion in `backwards` is a 2-cycle.
    let path = "src/ld_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![("lock-cycle".to_string(), 13), ("ld-wait".to_string(), 19),]
    );
    let cycle = &report.findings[0];
    assert!(
        cycle.message.contains(
            "lock acquisition cycle workspace::counters -> workspace::table -> workspace::counters"
        ),
        "unexpected message: {}",
        cycle.message
    );
    assert_eq!(
        cycle.chain,
        vec![
            format!(
                "workspace::counters -> workspace::table \
                 ({path}:13, `table` acquired while `counters` held in `backwards`)"
            ),
            format!(
                "workspace::table -> workspace::counters \
                 ({path}:3, declared lock-order `table < counters`)"
            ),
        ]
    );
}

#[test]
fn allow_directives_suppress_every_family() {
    let src = include_str!("fixtures/allowed_clean.rs");
    // Same violation shapes as the other fixtures, each covered by an
    // allow / allow-file directive — and in full panic-freedom scope.
    assert_eq!(
        rules_and_lines("crates/he/src/allowed_fixture.rs", src),
        vec![]
    );
}

#[test]
fn walker_skips_the_fixture_directory() {
    let tests_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let files = flcheck::collect_files(&tests_dir).expect("walk tests dir");
    assert!(
        files
            .iter()
            .all(|p| !p.to_string_lossy().contains("fixtures/")),
        "fixtures must be excluded from the walk, got {files:?}"
    );
}

fn workspace(inputs: &[(&str, &str)]) -> flcheck::report::Report {
    let owned: Vec<(String, String)> = inputs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    flcheck::check_workspace(&owned)
}

#[test]
fn taint_fixture_reports_interprocedural_leak_with_chain() {
    let src = include_str!("fixtures/taint_leak.rs");
    let path = "crates/mpint/src/taint_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    let want: Vec<(String, u32)> = [
        ("ct-branch", 13),  // `if` inside the ct helper
        ("ct-compare", 13), // `==` in its predicate
        ("ct-taint", 13),   // secret `key` reached the branch via `whiten`
        ("ct-return", 14),  // early exit inside the ct helper
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want);

    let taint = report
        .findings
        .iter()
        .find(|f| f.rule == "ct-taint")
        .expect("ct-taint finding");
    assert_eq!(
        taint.chain,
        vec![format!("seal ({path}:6)"), format!("whiten ({path}:12)")],
        "provenance chain must name the seed fn and the leaking callee"
    );
    assert!(
        taint.message.contains("`x`") && taint.message.contains("`whiten`"),
        "unexpected message: {}",
        taint.message
    );
}

#[test]
fn reach_fixture_reports_transitive_panic_with_chain() {
    let src = include_str!("fixtures/reach_violations.rs");
    let path = "crates/core/src/reach_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    let want: Vec<(String, u32)> = [
        ("pf-reach", 5),   // `api`'s call into `middle`
        ("pf-unwrap", 13), // the underlying panic site in `deep`
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, want);

    let reach = &report.findings[0];
    assert_eq!(
        reach.chain,
        vec![
            format!("api ({path}:4)"),
            format!("middle ({path}:8)"),
            format!("deep ({path}:12)"),
            format!("pf-unwrap ({path}:13)"),
        ],
        "chain must walk the full call path down to the panic fact"
    );
    assert!(
        reach.message.contains("2 calls deep"),
        "unexpected message: {}",
        reach.message
    );
}

#[test]
fn lock_cycle_fixture_reports_cycle_and_hotpath_with_chains() {
    let src = include_str!("fixtures/lock_cycle.rs");
    let path = "crates/gpu-sim/src/lockgraph_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("lock-cycle".to_string(), 16),
            ("lock-across-hotpath".to_string(), 21),
        ]
    );

    let cycle = &report.findings[0];
    assert!(
        cycle
            .message
            .contains("lock acquisition cycle gpu-sim::stats -> gpu-sim::table -> gpu-sim::stats"),
        "unexpected message: {}",
        cycle.message
    );
    assert_eq!(
        cycle.chain,
        vec![
            format!(
                "gpu-sim::stats -> gpu-sim::table \
                 ({path}:16, `table` acquired while `stats` held in `ba`)"
            ),
            format!(
                "gpu-sim::table -> gpu-sim::stats \
                 ({path}:11, `stats` acquired while `table` held in `ab`)"
            ),
        ]
    );

    let hot = &report.findings[1];
    assert!(
        hot.message.contains("`gpu-sim::stats` held in `hot`")
            && hot.message.contains("reaches hot-path kernel `mont_mul`"),
        "unexpected message: {}",
        hot.message
    );
    assert_eq!(
        hot.chain,
        vec![
            format!("hot ({path}:19)"),
            format!("helper ({path}:25)"),
            format!("mont_mul ({path}:29)"),
        ]
    );
}

#[test]
fn uncharged_work_fixture_reports_cost_rules_with_chains() {
    let src = include_str!("fixtures/uncharged_work.rs");
    let path = "crates/he/src/cost_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("uncharged-work".to_string(), 21),
            ("stale-estimate".to_string(), 28),
            ("stale-estimate".to_string(), 28),
        ]
    );

    let uncharged = &report.findings[0];
    assert!(
        uncharged.message.contains("`uncharged_entry`")
            && uncharged.message.contains("never flows into a charge sink"),
        "unexpected message: {}",
        uncharged.message
    );
    assert_eq!(
        uncharged.chain,
        vec![
            format!("uncharged_entry ({path}:21)"),
            format!("kernel ({path}:13)"),
            format!("mont_mul ({path}:4)"),
        ]
    );

    // Findings sort by message at equal (file, line, rule): the arity
    // drift (`kernel`) precedes the vanished pairing (`vanished_kernel`).
    let drift = &report.findings[1];
    assert!(
        drift
            .message
            .contains("pairs kernel `kernel` with 5 parameter(s), but `kernel` now takes 2"),
        "unexpected message: {}",
        drift.message
    );
    assert_eq!(
        drift.chain,
        vec![
            format!("kernel_op_estimate ({path}:28)"),
            format!("kernel ({path}:13)"),
        ]
    );
    let vanished = &report.findings[2];
    assert!(
        vanished
            .message
            .contains("pairs kernel `vanished_kernel`, which no longer exists"),
        "unexpected message: {}",
        vanished.message
    );
    assert_eq!(
        vanished.chain,
        vec![format!("kernel_op_estimate ({path}:28)")]
    );
}

#[test]
fn steal_fixture_reports_park_and_double_acquire() {
    let src = include_str!("fixtures/steal_violations.rs");
    let path = "crates/shims/rayon/src/steal_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("guard-across-steal".to_string(), 6),
            ("guard-across-steal".to_string(), 11),
        ]
    );
    let park = &report.findings[0];
    assert!(
        park.message
            .contains("deque guard `deques` held in `bad_park` across blocking `park`"),
        "unexpected message: {}",
        park.message
    );
    assert_eq!(
        park.chain,
        vec![format!("bad_park ({path}:4)"), format!("park ({path}:6)"),]
    );
    let steal = &report.findings[1];
    assert!(
        steal
            .message
            .contains("worker in `bad_steal` steals from a deque"),
        "unexpected message: {}",
        steal.message
    );
    assert_eq!(steal.chain, vec![format!("bad_steal ({path}:9)")]);
}

#[test]
fn nondet_result_fixture_reports_flows_with_chains() {
    let src = include_str!("fixtures/nondet_result.rs");
    let path = "crates/core/src/nondet_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    // The raw string, the nested block comment, and the deterministic
    // probes (`contains_key`, `len`) in `inert` must all stay silent; the
    // `det-absorb` stopwatch's own `Instant::now` is absorbed.
    assert_eq!(
        got,
        vec![
            ("nondet-in-result".to_string(), 4),
            ("nondet-in-result".to_string(), 13),
            ("nondet-in-result".to_string(), 25),
        ]
    );

    // A pure callee's chain walks its nearest sink-feeding caller down to
    // the source fn, then ends at that caller's sink.
    let hash = &report.findings[0];
    assert!(
        hash.message
            .contains("hash-order iteration `.values()` on `m` in `summarize`")
            && hash.message.contains("det-sink `render`"),
        "unexpected message: {}",
        hash.message
    );
    assert_eq!(
        hash.chain,
        vec![
            format!("report ({path}:12)"),
            format!("summarize ({path}:3)"),
            format!("render ({path}:8)"),
        ]
    );

    // An ancestor's chain walks straight down to the sink.
    let clock = &report.findings[1];
    assert!(
        clock
            .message
            .contains("wall-clock read `Instant::now()` in `report`"),
        "unexpected message: {}",
        clock.message
    );
    assert_eq!(
        clock.chain,
        vec![format!("report ({path}:12)"), format!("render ({path}:8)")]
    );

    // `nondet(..)` markers anchor at the fn declaration line.
    let declared = &report.findings[2];
    assert!(
        declared
            .message
            .contains("declared nondet source (reads the interconnect topology) in `topology`"),
        "unexpected message: {}",
        declared.message
    );
    assert_eq!(
        declared.chain,
        vec![
            format!("inert ({path}:29)"),
            format!("topology ({path}:25)"),
            format!("render ({path}:8)"),
        ]
    );
}

#[test]
fn guard_escape_fixture_reports_unfollowable_escapes_only() {
    let src = include_str!("fixtures/guard_escape.rs");
    let path = "crates/core/src/escape_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    // `acquire` returns its guard and is *followed*, not flagged — only
    // the four unfollowable escapes fire.
    assert_eq!(
        got,
        vec![
            ("guard-escape".to_string(), 12),
            ("guard-escape".to_string(), 16),
            ("guard-escape".to_string(), 19),
            ("guard-escape".to_string(), 26),
        ]
    );

    let stored = &report.findings[0];
    assert!(
        stored
            .message
            .contains("guard `g` (lock `inner`) stored in struct field `guard` in `stash`"),
        "unexpected message: {}",
        stored.message
    );
    assert_eq!(stored.chain, vec![format!("stash ({path}:10)")]);

    let passed = &report.findings[1];
    assert!(
        passed
            .message
            .contains("guard `g` (lock `inner`) passed by value to `consume` in `hand_off`"),
        "unexpected message: {}",
        passed.message
    );
    assert_eq!(passed.chain, vec![format!("hand_off ({path}:14)")]);

    let temp = &report.findings[2];
    assert!(
        temp.message
            .contains("temporary guard of lock `inner` passed by value to `watch` in `leak_temp`"),
        "unexpected message: {}",
        temp.message
    );
    assert_eq!(temp.chain, vec![format!("leak_temp ({path}:18)")]);

    let short = &report.findings[3];
    assert!(
        short.message.contains(
            "guard `guard` (lock `inner`) stored in struct field `guard` \
             (init shorthand) in `stash_short`"
        ),
        "unexpected message: {}",
        short.message
    );
    assert_eq!(short.chain, vec![format!("stash_short ({path}:24)")]);
}

#[test]
fn races_fixture_reports_all_three_rules_with_capture_chains() {
    let src = include_str!("fixtures/races.rs");
    let path = "crates/core/src/races_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    // `locked_is_clean` must stay silent: the capture is the lock itself.
    assert_eq!(
        got,
        vec![
            ("race-shared-mut".to_string(), 7),
            ("race-unsynced-write".to_string(), 14),
            ("race-cell-steal".to_string(), 21),
            ("race-unsynced-write".to_string(), 26),
        ]
    );

    let shared = &report.findings[0];
    assert!(
        shared
            .message
            .contains("captured binding `total` mutated (assignment `total += ..`)")
            && shared.message.contains("via `for_each` in `shared_mut`"),
        "unexpected message: {}",
        shared.message
    );
    assert_eq!(
        shared.chain,
        vec![
            format!("capture of `total` ({path}:7)"),
            format!("scheduled onto the pool via `for_each` ({path}:6)"),
            format!("write: assignment `total += ..` ({path}:7)"),
        ]
    );

    let unsynced = &report.findings[1];
    assert!(
        unsynced
            .message
            .contains("unsynchronized write to captured `log`")
            && unsynced.message.contains("no lock guard covers the write"),
        "unexpected message: {}",
        unsynced.message
    );
    assert_eq!(
        unsynced.chain,
        vec![
            format!("capture of `log` ({path}:14)"),
            format!("scheduled onto the pool via `spawn` ({path}:13)"),
            format!("write: mutating call `.push(..)` on `log` ({path}:14)"),
        ]
    );

    let cell = &report.findings[2];
    assert!(
        cell.message
            .contains("single-threaded interior-mutability value `hits`"),
        "unexpected message: {}",
        cell.message
    );
    assert_eq!(
        cell.chain,
        vec![
            format!("capture of `hits` ({path}:21)"),
            format!("scheduled onto the pool via `for_each` ({path}:20)"),
        ]
    );

    // The interprocedural chain walks capture -> pool entry -> helper ->
    // the unguarded write inside it.
    let interproc = &report.findings[3];
    assert!(
        interproc.message.contains(
            "captured `stats` passed from a pool-scheduled closure in `fanout` into `record`"
        ),
        "unexpected message: {}",
        interproc.message
    );
    assert_eq!(
        interproc.chain,
        vec![
            format!("capture of `stats` ({path}:26)"),
            format!("scheduled onto the pool via `spawn` ({path}:26)"),
            format!("passed to `record` ({path}:26)"),
            format!("record ({path}:29)"),
            format!("write: mutating call `.push(..)` on `stats` ({path}:30)"),
        ]
    );
}

#[test]
fn width_fixture_reports_lossy_narrows_with_sink_chains() {
    let src = include_str!("fixtures/width_violations.rs");
    let path = "crates/he/src/width_fixture.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    // `high_half` (narrow directive), `slots` (widen-ok), `fixed` (pure
    // literal), and the widening `n as usize` must all stay silent.
    assert_eq!(
        got,
        vec![
            ("lossy-narrow".to_string(), 5),
            ("lossy-narrow".to_string(), 14),
            ("lossy-narrow".to_string(), 18),
        ]
    );

    // Case (a): a cast inside the sink's own computation.
    let inside = &report.findings[0];
    assert!(
        inside.message.contains("`as u32`")
            && inside.message.contains("op-cost accounting")
            && inside.message.contains("`kernel_op_estimate`"),
        "unexpected message: {}",
        inside.message
    );
    assert_eq!(
        inside.chain,
        vec![
            format!("cast `mac_per_limb ( limbs ) as u32` ({path}:5)"),
            format!("kernel_op_estimate ({path}:4)"),
        ]
    );

    // Case (b): a cast flowing as an argument straight into the sink.
    let direct_arg = &report.findings[1];
    assert!(
        direct_arg
            .message
            .contains("in `plan` passed into `kernel_op_estimate`"),
        "unexpected message: {}",
        direct_arg.message
    );
    assert_eq!(
        direct_arg.chain,
        vec![
            format!("cast `terms as u32` ({path}:14)"),
            format!("plan ({path}:13)"),
            format!("kernel_op_estimate ({path}:4)"),
        ]
    );

    // Case (b), transitively: the callee still reaches the sink.
    let transitive = &report.findings[2];
    assert!(
        transitive
            .message
            .contains("in `stage` passed into `tally`"),
        "unexpected message: {}",
        transitive.message
    );
    assert_eq!(
        transitive.chain,
        vec![
            format!("cast `limbs as u16` ({path}:18)"),
            format!("stage ({path}:17)"),
            format!("tally ({path}:21)"),
            format!("kernel_op_estimate ({path}:4)"),
        ]
    );
}

#[test]
fn unit_fixture_reports_all_three_rules_at_pinned_lines() {
    let src = include_str!("fixtures/unit_violations.rs");
    // The synthetic path puts `run_round` where the charge-unphased
    // anchor expects it: the round engine.
    let path = "crates/fl/src/engine.rs";
    let report = workspace(&[(path, src)]);
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    let want: Vec<(String, u32)> = [
        ("charge-unphased", 14),  // charge_sleep: zero phase slots
        ("charge-unphased", 19),  // charge_double: two phase slots
        ("unit-mismatch", 35),    // total_seconds += payload_bytes
        ("unit-mismatch", 37),    // deadline_seconds < payload_bytes
        ("unit-unconverted", 42), // relay(payload_bytes): bytes into seconds
    ]
    .iter()
    .map(|(r, l)| (r.to_string(), *l))
    .collect();
    assert_eq!(got, want, "findings: {:#?}", report.findings);

    // Zero-slot sink: the chain walks the round engine's call path.
    let unphased = &report.findings[0];
    assert!(
        unphased
            .message
            .contains("never land in an `EpochBreakdown` phase slot"),
        "unexpected message: {}",
        unphased.message
    );
    assert_eq!(
        unphased.chain,
        vec![
            format!("run_round ({path}:33)"),
            format!("relay ({path}:29)"),
            format!("charge_sleep ({path}:14)"),
        ]
    );

    // Double-charged sink names both slots it writes.
    let double = &report.findings[1];
    assert!(
        double.message.contains("2 phase slots")
            && double.message.contains("compute_seconds")
            && double.message.contains("encrypt_seconds")
            && double.message.contains("double-charged"),
        "unexpected message: {}",
        double.message
    );

    // The mismatches name both sides with their units.
    assert!(
        report.findings[2]
            .message
            .contains("accumulates a bytes value into `total_seconds` (seconds)"),
        "unexpected message: {}",
        report.findings[2].message
    );
    assert!(
        report.findings[3]
            .message
            .contains("compares `deadline_seconds` (seconds) with a bytes value"),
        "unexpected message: {}",
        report.findings[3].message
    );

    // The crossing names the declared converter and carries the
    // provenance chain down to where the propagated unit was seeded.
    let crossing = &report.findings[4];
    assert!(
        crossing
            .message
            .contains("without a convert(bytes->seconds) conversion")
            && crossing
                .message
                .contains("route it through `transfer_seconds`"),
        "unexpected message: {}",
        crossing.message
    );
    assert_eq!(
        crossing.chain,
        vec![
            format!("run_round ({path}:33)"),
            format!("relay ({path}:29)"),
            format!("charge_sleep ({path}:14)"),
        ]
    );
}

#[test]
fn unit_fixture_converted_path_is_silent() {
    // Sanity inverse: rewarding the fixture's converted call (line 38)
    // means a file that *only* routes bytes through the converter is
    // clean.
    let src = "// flcheck: convert(bytes->seconds)\n\
               fn transfer_seconds(bytes: f64) -> f64 { bytes / 1.0e9 }\n\
               fn run_round(payload_bytes: f64) -> f64 {\n\
                   let mut total_seconds = 0.0;\n\
                   total_seconds += transfer_seconds(payload_bytes);\n\
                   total_seconds\n\
               }\n";
    assert_eq!(rules_and_lines("crates/fl/src/engine.rs", src), vec![]);
}

#[test]
fn workspace_report_is_deterministic_across_input_order() {
    let taint = include_str!("fixtures/taint_leak.rs");
    let reach = include_str!("fixtures/reach_violations.rs");
    let races = include_str!("fixtures/races.rs");
    let width = include_str!("fixtures/width_violations.rs");
    let units = include_str!("fixtures/unit_violations.rs");
    let fwd = workspace(&[
        ("crates/mpint/src/taint_fixture.rs", taint),
        ("crates/core/src/reach_fixture.rs", reach),
        ("crates/core/src/races_fixture.rs", races),
        ("crates/he/src/width_fixture.rs", width),
        ("crates/fl/src/engine.rs", units),
    ]);
    let rev = workspace(&[
        ("crates/fl/src/engine.rs", units),
        ("crates/he/src/width_fixture.rs", width),
        ("crates/core/src/races_fixture.rs", races),
        ("crates/core/src/reach_fixture.rs", reach),
        ("crates/mpint/src/taint_fixture.rs", taint),
    ]);
    assert_eq!(fwd.render_json(), rev.render_json());
    assert!(fwd.render_json().contains("\"schema\": 6"));
    // Every rule in the registry is enumerated in the summary, found
    // or not — schema-6 consumers key on the full table.
    for rule in flcheck::report::ALL_RULES {
        assert!(
            fwd.render_json().contains(&format!("\"{rule}\"")),
            "summary must enumerate {rule}"
        );
    }
}
