//! The FLBooster platform (paper Sec. IV–V).
//!
//! This crate ties the substrates together into the system the paper
//! describes (Fig. 3's four layers):
//!
//! - **GPU-HE** comes from [`he::ghe`] running on a [`gpu_sim::Device`].
//! - **Encoding-Quantization** and **Batch Compression** come from
//!   [`codec`].
//! - **API Interfaces** (paper Table I) are the vectorized
//!   multi-precision and cryptographic entry points in [`api`].
//! - The **pipelined processing** of paper Fig. 4 — data conversion →
//!   encode/quantize/pack → GPU compute → unpack/decode — lives in
//!   [`pipeline`], exposed through the [`FlBooster`] platform object.
//! - The **theoretical analysis** of paper Sec. V-B (Eq. 10–14) is
//!   implemented in [`analysis`] and cross-checked against the simulator
//!   in the bench harness.
//!
//! # Example
//!
//! ```
//! use flbooster_core::FlBooster;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let platform = FlBooster::builder()
//!     .key_bits(256)
//!     .participants(2)
//!     .build(&mut rng)
//!     .unwrap();
//!
//! let grads = vec![0.25, -0.5, 0.125];
//! let (cts, _) = platform.encrypt_gradients(&grads, 42).unwrap();
//! let (back, _) = platform.decrypt_gradients(&cts, grads.len(), 1).unwrap();
//! for (a, b) in grads.iter().zip(&back) {
//!     assert!((a - b).abs() < 1e-6);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod api;
mod error;
pub mod pipeline;

pub use error::{Error, Result};
pub use pipeline::{FlBooster, FlBoosterBuilder, PipelineReport};
