//! Interprocedural determinism-flow analysis (`nondet-in-result`).
//!
//! The workspace's hardest invariant is that every *result* — rendered
//! reports, ciphertexts, aggregates, bench JSON content — is bit-identical
//! at any thread count. `tests/parallel_determinism.rs` enforces that
//! dynamically; this pass makes it a static gate by connecting
//! **nondeterminism sources** to declared **result sinks** over the
//! workspace call graph.
//!
//! Sources are found syntactically in each fn body:
//!
//! - hash-order iteration: `.iter()` / `.keys()` / `.values()` / `.drain()`
//!   (and friends) on an identifier the file declares as a `HashMap` /
//!   `HashSet` (a `let` binding or a `name: HashMap<..>` type position),
//!   and `for .. in` over such an identifier;
//! - wall-clock reads: `Instant::now()` / `SystemTime::now()`;
//! - thread-identity reads: `current_num_threads()`,
//!   `current_thread_index()`, `available_parallelism()`,
//!   `thread::current()`;
//! - `// flcheck: nondet(description)` markers for sources the token scan
//!   cannot see.
//!
//! Sinks are fns marked `// flcheck: det-sink` (report serialization,
//! ciphertext/aggregate constructors, bench JSON content writers). A fn
//! marked `// flcheck: det-absorb` *measures* nondeterminism without
//! letting it reach result bytes (ScanStats timings, bench wall-clock):
//! its own sources are ignored and it cuts propagation in both
//! directions.
//!
//! The flow model is a graph-level may-analysis, like
//! [`crate::costmodel`]: a source in fn `S` is result-affecting when some
//! fn `A` both (transitively) calls `S` — so `S`'s value can flow back up
//! to `A` — and (transitively) reaches a sink — so `A` can pass it in.
//! Equivalently, `S` lies in the forward call closure of the sinks'
//! backward closure, both cut at `det-absorb` nodes. This
//! over-approximates (no per-value data flow: a timing that provably
//! stays local to `A` still flags), which is the safe direction for a
//! determinism gate; `det-absorb` and `allow(nondet-in-result)` are the
//! pressure valves, and the soundness limits are documented in DESIGN §15.

use crate::callgraph::{hop, CallGraph, NodeId};
use crate::lexer::TokKind;
use crate::parse::{FnItem, ParsedFile};
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Hash-collection methods whose visit order depends on the hasher.
const HASH_ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
];

/// Deterministic hash-collection methods: a hash identifier followed by
/// one of these in a `for` header is order-independent.
const HASH_SAFE_METHODS: &[&str] = &["contains", "contains_key", "get", "is_empty", "len"];

/// Free calls that read thread identity or pool width.
const THREAD_IDENTITY_CALLS: &[&str] = &[
    "available_parallelism",
    "current_num_threads",
    "current_thread_index",
];

/// Runs the determinism-flow pass.
pub fn check_detflow(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut sinks: BTreeSet<NodeId> = BTreeSet::new();
    let mut absorb: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            if f.is_det_sink {
                sinks.insert((fi, gi));
            }
            if f.is_det_absorb {
                absorb.insert((fi, gi));
            }
        }
    }
    if sinks.is_empty() {
        return;
    }

    // Ancestors: nodes whose call chains reach a sink without passing
    // through a det-absorb node.
    let mut anc = sinks.clone();
    loop {
        let mut changed = false;
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.fns.iter().enumerate() {
                let n = (fi, gi);
                if f.in_test || anc.contains(&n) || absorb.contains(&n) {
                    continue;
                }
                if graph.out(n).iter().any(|e| anc.contains(&e.to)) {
                    anc.insert(n);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Relevant: ancestors plus everything they transitively call — a
    // callee's return value can flow back up into a sink argument — again
    // cut at det-absorb nodes.
    let mut relevant = anc.clone();
    let mut queue: VecDeque<NodeId> = anc.iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        for e in graph.out(n) {
            if absorb.contains(&e.to) || files[e.to.0].fns[e.to.1].in_test {
                continue;
            }
            if relevant.insert(e.to) {
                queue.push_back(e.to);
            }
        }
    }

    // Per-file hash-typed identifier registries, built lazily: most files
    // never host a relevant source.
    let mut hashes: Vec<Option<BTreeSet<String>>> = vec![None; files.len()];

    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            let n = (fi, gi);
            if f.in_test || absorb.contains(&n) || !relevant.contains(&n) {
                continue;
            }
            let reg = hashes[fi].get_or_insert_with(|| hash_idents(&pf.src));
            let srcs = direct_sources(pf, f, reg);
            if srcs.is_empty() {
                continue;
            }
            let (chain, sink_name) = sink_context(files, graph, n, &anc, &sinks, &absorb);
            for (line, desc) in srcs {
                if pf.src.is_allowed("nondet-in-result", line) {
                    continue;
                }
                out.push(Finding::with_chain(
                    "nondet-in-result",
                    &pf.src.rel_path,
                    line,
                    format!(
                        "{desc} in `{}` may reach result bytes of det-sink `{sink_name}`",
                        f.name
                    ),
                    chain.clone(),
                ));
            }
        }
    }
}

/// Identifiers a file declares with a `HashMap` / `HashSet` type: type
/// ascriptions (`name: HashMap<..>` — struct fields, statics, params,
/// annotated lets) and `let` bindings whose initializer mentions the
/// type (`let m = HashMap::new()`). Name-based and file-wide, so shadowed
/// or same-named identifiers over-approximate — the safe direction.
fn hash_idents(src: &SourceFile) -> BTreeSet<String> {
    let toks = &src.tokens;
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Type position: walk left over type-ish tokens to a `:`, then
        // take the identifier before it.
        let mut k = i;
        while k > 0 {
            let p = &toks[k - 1];
            let type_ish = match p.kind {
                TokKind::Ident | TokKind::Lifetime => true,
                TokKind::Op => matches!(p.text.as_str(), "&" | "<" | "::"),
                _ => false,
            };
            if !type_ish {
                break;
            }
            k -= 1;
        }
        if k >= 2 && toks[k - 1].is_op(":") && toks[k - 2].kind == TokKind::Ident {
            out.insert(toks[k - 2].text.clone());
        }
        // Binding position: `let [mut] NAME = .. HashMap ..`.
        let mut s = i;
        while s > 0 {
            let p = &toks[s - 1];
            if (p.kind == TokKind::Op && p.text == ";") || p.text == "{" || p.text == "}" {
                break;
            }
            s -= 1;
        }
        if toks.get(s).is_some_and(|t| t.is_ident("let")) {
            let mut j = s + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j) {
                if name.kind == TokKind::Ident {
                    out.insert(name.text.clone());
                }
            }
        }
    }
    out
}

/// Syntactic nondeterminism sources in one fn body, as (line, description)
/// pairs sorted by line. Includes the fn's `nondet(..)` directive markers.
fn direct_sources(pf: &ParsedFile, f: &FnItem, hashes: &BTreeSet<String>) -> Vec<(u32, String)> {
    let toks = &pf.src.tokens;
    let mut out: Vec<(u32, String)> = Vec::new();

    for c in &f.calls {
        if c.is_method && HASH_ITER_METHODS.contains(&c.callee.as_str()) {
            let Some((s, e)) = c.recv else { continue };
            let Some(last) = toks[s..e].iter().rev().find(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if hashes.contains(&last.text) {
                out.push((
                    c.line,
                    format!("hash-order iteration `.{}()` on `{}`", c.callee, last.text),
                ));
            }
        } else if c.callee == "now" && !c.is_method {
            if c.name_idx >= 2 && toks[c.name_idx - 1].is_op("::") {
                let ty = &toks[c.name_idx - 2];
                if ty.is_ident("Instant") || ty.is_ident("SystemTime") {
                    out.push((c.line, format!("wall-clock read `{}::now()`", ty.text)));
                }
            }
        } else if !c.is_method && THREAD_IDENTITY_CALLS.contains(&c.callee.as_str()) {
            out.push((c.line, format!("thread-identity read `{}()`", c.callee)));
        } else if c.callee == "current"
            && !c.is_method
            && c.name_idx >= 2
            && toks[c.name_idx - 1].is_op("::")
            && toks[c.name_idx - 2].is_ident("thread")
        {
            out.push((
                c.line,
                "thread-identity read `thread::current()`".to_string(),
            ));
        }
    }

    // `for .. in <hash collection> { .. }` headers: a hash identifier
    // iterated bare (not narrowed by a deterministic method call).
    let limit = f.body_end.min(toks.len());
    let mut i = f.body_start;
    while i < limit {
        if let Some(&(_, nend)) = f.nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find the `in` keyword at pattern depth 0, then the body `{`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_idx = None;
        while j < limit {
            match toks[j].kind {
                TokKind::Open => {
                    if toks[j].text == "{" {
                        break; // `impl .. for Ty {` — not a loop
                    }
                    depth += 1;
                }
                TokKind::Close => depth -= 1,
                TokKind::Ident if depth == 0 && toks[j].text == "in" => {
                    in_idx = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 0i32;
        let mut k = in_idx + 1;
        while k < limit {
            match toks[k].kind {
                TokKind::Open => {
                    if toks[k].text == "{" && depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                TokKind::Close => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        for m in in_idx + 1..k.min(limit) {
            let t = &toks[m];
            if t.kind != TokKind::Ident || !hashes.contains(&t.text) {
                continue;
            }
            // Narrowed by a method/index (`map.len()`, `map[k]`)? Only a
            // deterministic whitelist keeps it quiet; `map.iter()` in the
            // header is caught by the method rule above.
            let next = toks.get(m + 1);
            if next.is_some_and(|t| t.text == "[") {
                continue;
            }
            if next.is_some_and(|t| t.is_op("."))
                && toks
                    .get(m + 2)
                    .is_some_and(|t| HASH_SAFE_METHODS.contains(&t.text.as_str()))
            {
                continue;
            }
            if next.is_some_and(|t| t.is_op(".")) {
                // Another method on the hash: the method rule decides.
                continue;
            }
            out.push((
                toks[in_idx].line,
                format!("`for` over hash collection `{}`", t.text),
            ));
            break;
        }
        i = k.max(i + 1);
    }

    for d in &f.nondets {
        out.push((f.line, format!("declared nondet source ({d})")));
    }

    out.sort();
    out.dedup();
    out
}

/// Explains how node `n` connects to a sink: the call chain (as hops) and
/// the sink's fn name. An ancestor's chain walks `n -> .. -> sink`; a
/// pure callee's chain walks its nearest sink-feeding caller down to `n`,
/// then ends at that caller's sink.
fn sink_context(
    files: &[ParsedFile],
    graph: &CallGraph,
    n: NodeId,
    anc: &BTreeSet<NodeId>,
    sinks: &BTreeSet<NodeId>,
    absorb: &BTreeSet<NodeId>,
) -> (Vec<String>, String) {
    let name_of = |m: NodeId| files[m.0].fns[m.1].name.clone();
    if anc.contains(&n) {
        if let Some(path) = cut_path(graph, &[n], |m| sinks.contains(&m), absorb) {
            let sink = *path.last().expect("non-empty path");
            return (path.iter().map(|&m| hop(files, m)).collect(), name_of(sink));
        }
    } else {
        // Multi-source BFS from every ancestor down to `n`.
        let seeds: Vec<NodeId> = anc.iter().copied().collect();
        if let Some(path) = cut_path(graph, &seeds, |m| m == n, absorb) {
            let a = path[0];
            let mut chain: Vec<String> = path.iter().map(|&m| hop(files, m)).collect();
            let sink_name = match cut_path(graph, &[a], |m| sinks.contains(&m), absorb) {
                Some(spath) => {
                    let sink = *spath.last().expect("non-empty path");
                    chain.push(hop(files, sink));
                    name_of(sink)
                }
                None => "?".to_string(),
            };
            return (chain, sink_name);
        }
    }
    (vec![hop(files, n)], "?".to_string())
}

/// Deterministic BFS shortest path from any seed to the first node
/// satisfying `target`, never entering `cut` nodes. Both endpoints
/// included; seeds are visited in slice order, edges in call-site order.
fn cut_path(
    graph: &CallGraph,
    seeds: &[NodeId],
    target: impl Fn(NodeId) -> bool,
    cut: &BTreeSet<NodeId>,
) -> Option<Vec<NodeId>> {
    for &s in seeds {
        if target(s) {
            return Some(vec![s]);
        }
    }
    let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue: VecDeque<NodeId> = seeds.iter().copied().collect();
    let seed_set: BTreeSet<NodeId> = seeds.iter().copied().collect();
    while let Some(m) = queue.pop_front() {
        for e in graph.out(m) {
            if seed_set.contains(&e.to) || pred.contains_key(&e.to) || cut.contains(&e.to) {
                continue;
            }
            pred.insert(e.to, m);
            if target(e.to) {
                let mut path = vec![e.to];
                loop {
                    let last = *path.last().expect("non-empty");
                    if seed_set.contains(&last) {
                        break;
                    }
                    path.push(*pred.get(&last)?);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(e.to);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_detflow(&parsed, &graph, &mut out);
        out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
        out
    }

    #[test]
    fn hash_iteration_feeding_a_sink_is_flagged_with_chain() {
        let src = "\
use std::collections::HashMap;
fn summarize(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}
// flcheck: det-sink
fn render(total: u64) -> String { format!(\"{total}\") }
pub fn report(m: &HashMap<u32, u64>) -> String {
    render(summarize(m))
}
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!((f.rule.as_str(), f.line), ("nondet-in-result", 3));
        assert!(
            f.message
                .contains("hash-order iteration `.values()` on `m` in `summarize`"),
            "{}",
            f.message
        );
        assert!(f.message.contains("det-sink `render`"), "{}", f.message);
        // `summarize` is a pure callee of the ancestor `report`: the chain
        // walks report -> summarize, then ends at report's sink.
        assert_eq!(
            f.chain,
            vec![
                "report (crates/core/src/x.rs:7)",
                "summarize (crates/core/src/x.rs:2)",
                "render (crates/core/src/x.rs:6)",
            ]
        );
    }

    #[test]
    fn ancestor_sources_chain_straight_to_the_sink() {
        let src = "\
// flcheck: det-sink
fn emit(x: u64) {}
pub fn drive(m: &std::collections::HashMap<u32, u64>) {
    for (k, v) in m {
        emit(k as u64 + v);
    }
}
";
        let got = run(&[("crates/fl/src/x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4);
        assert!(
            got[0].message.contains("`for` over hash collection `m`"),
            "{}",
            got[0].message
        );
        assert_eq!(
            got[0].chain,
            vec![
                "drive (crates/fl/src/x.rs:3)",
                "emit (crates/fl/src/x.rs:2)"
            ]
        );
    }

    #[test]
    fn time_and_thread_reads_are_sources() {
        let src = "\
// flcheck: det-sink
fn write_json(s: &str) {}
pub fn bad_bench() {
    let t0 = Instant::now();
    let width = rayon::current_num_threads();
    write_json(&format!(\"{width} {:?}\", t0.elapsed()));
}
";
        let got = run(&[("crates/bench/src/x.rs", src)]);
        let lines: Vec<(u32, bool)> = got
            .iter()
            .map(|f| (f.line, f.message.contains("wall-clock")))
            .collect();
        assert_eq!(lines, vec![(4, true), (5, false)], "{got:?}");
        assert!(got[1].message.contains("`current_num_threads()`"));
    }

    #[test]
    fn absorb_cuts_both_directions_and_ignores_own_sources() {
        let src = "\
// flcheck: det-sink
fn sink(x: u64) {}
// flcheck: det-absorb
fn stopwatch() -> u64 {
    let t = Instant::now();
    tick(t)
}
fn tick(t: u64) -> u64 { t }
pub fn run_all() {
    stopwatch();
    sink(3);
}
";
        // stopwatch's Instant is absorbed; tick is only reachable through
        // the absorb node, so it is not relevant either.
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn nondet_directive_and_allow_interact() {
        let src = "\
// flcheck: det-sink
fn sink(x: u64) {}
// flcheck: nondet(reads the CPU cycle counter)
fn rdtsc_ish() -> u64 { 0 }
fn pardoned() -> u64 {
    // flcheck: allow(nondet-in-result)
    let t = Instant::now();
    0
}
pub fn api() { sink(rdtsc_ish() + pardoned()); }
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4);
        assert!(
            got[0]
                .message
                .contains("declared nondet source (reads the CPU cycle counter)"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn sources_without_any_sink_path_stay_quiet() {
        let src = "\
fn loose(m: &std::collections::HashMap<u32, u64>) -> u64 {
    m.values().sum()
}
pub fn timing_only() {
    let t = Instant::now();
    loose(&Default::default());
}
";
        // No det-sink anywhere: the pass has nothing to protect.
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn deterministic_probes_on_hash_collections_are_fine() {
        let src = "\
// flcheck: det-sink
fn sink(x: u64) {}
pub fn api(m: &std::collections::HashMap<u32, u64>) {
    let mut acc = 0;
    for i in 0..m.len() {
        acc += i as u64;
    }
    if m.contains_key(&7) {
        acc += m.get(&7).copied().unwrap_or(0);
    }
    sink(acc);
}
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn btreemap_iteration_is_not_a_source() {
        let src = "\
// flcheck: det-sink
fn sink(x: u64) {}
pub fn api(m: &std::collections::BTreeMap<u32, u64>) {
    let mut acc = 0;
    for (_, v) in m.iter() {
        acc += v;
    }
    sink(acc);
}
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn hash_syntax_in_raw_strings_and_comments_is_inert() {
        let src = "\
// flcheck: det-sink
fn sink(s: &str) {}
/* prose: /* let m: HashMap<u32, u64> = ...; m.iter() */ still prose */
pub fn api() {
    let doc = r#\"let m: HashMap<u32, u64>; for (k, v) in m { m.values() }\"#;
    // let t = Instant::now(); m.keys();
    sink(doc);
}
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_fns_are_out_of_scope() {
        let src = "\
// flcheck: det-sink
fn sink(x: u64) {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let t = Instant::now();
        super::sink(1);
    }
}
";
        let got = run(&[("crates/core/src/x.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }
}
