//! Quickstart: encrypt a gradient vector with batch compression, add four
//! participants' contributions homomorphically, and decrypt the sums.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flbooster_core::FlBooster;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Build the platform: 512-bit Paillier keys (use >= 1024 in
    //    production), 4 participants, paper-default 32-bit quantization
    //    slots, batch compression on, simulated RTX 3090.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let platform = FlBooster::builder()
        .key_bits(512)
        .participants(4)
        .build(&mut rng)
        .expect("platform construction");

    println!("FLBooster quickstart");
    println!("  key size: {} bits", platform.keys.public.key_bits);
    println!(
        "  slots per ciphertext: {}",
        platform.codec.slots_per_word()
    );

    // 2. Each participant encrypts its local gradients.
    let gradients: Vec<Vec<f64>> = (0..4)
        .map(|k| {
            (0..100)
                .map(|i| ((k * 100 + i) as f64 * 0.002).sin() * 0.5)
                .collect()
        })
        .collect();
    let mut batches = Vec::new();
    let mut upload_bytes = 0u64;
    for (k, grads) in gradients.iter().enumerate() {
        let (cts, report) = platform
            .encrypt_gradients(grads, k as u64)
            .expect("encrypt");
        upload_bytes += report.ciphertext_bytes;
        println!(
            "  participant {k}: {} values -> {} ciphertexts ({} bytes), HE {:.2} ms simulated",
            grads.len(),
            report.ciphertexts,
            report.ciphertext_bytes,
            report.he.sim_seconds * 1e3,
        );
        batches.push(cts);
    }
    println!(
        "  compression: {:.1}x fewer ciphertexts than one-per-value",
        100.0 / batches[0].len() as f64
    );

    // 3. The server folds the ciphertexts (it never sees plaintext).
    let (aggregate, agg_report) = platform.aggregate(&batches).expect("aggregate");
    println!(
        "  server aggregated 4 batches homomorphically in {:.2} ms simulated",
        agg_report.he.sim_seconds * 1e3
    );

    // 4. Participants decrypt the element-wise sums.
    let (sums, _) = platform
        .decrypt_gradients(&aggregate, 100, 4)
        .expect("decrypt");
    let expected: Vec<f64> = (0..100)
        .map(|i| gradients.iter().map(|g| g[i]).sum())
        .collect();
    let max_err = sums
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("  decrypted sums match plaintext sums within {max_err:.2e}");
    println!("  total upload: {upload_bytes} bytes for 400 gradient values");
    assert!(max_err < 1e-6, "quantization error out of bounds");
    println!("ok");
}
