//! The [`Natural`] arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (the canonical form of the paper's base-`2^w` "FRNS" layout, Sec.
//! IV-A1). The empty limb vector represents zero. An integer of `k` bits
//! occupies `s = ceil(k / w)` limbs, matching the paper's `s = ⌈k/w⌉`.

// flcheck: allow-file(pf-index) — limb indices in this module are bounded by
// `limbs.len()` loop ranges or by widths established on entry; `.get()` in
// these inner loops costs measurable throughput in the mont-mul benches.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Rem, Sub, SubAssign};

use crate::limb::{adc, sbb, Limb, LIMB_BITS};

/// An arbitrary-precision unsigned integer.
///
/// `Natural` is the plaintext/ciphertext/key carrier for every layer above
/// (`he`, `codec`, `flbooster-core`). Arithmetic is implemented on
/// references to avoid cloning in hot loops; owned operators are provided
/// for convenience.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    pub(crate) limbs: Vec<Limb>,
}

impl Natural {
    /// The value 0.
    pub const fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Borrows the little-endian limb slice (no trailing zeros).
    #[inline]
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Returns the limbs zero-padded to exactly `width` limbs.
    ///
    /// This is the fixed-width layout handed to GPU kernels, where every
    /// operand of a key-size-`k` cryptosystem occupies `s = ⌈k/w⌉` words
    /// regardless of its magnitude.
    ///
    /// # Panics
    ///
    /// Panics if the value needs more than `width` limbs.
    pub fn to_padded_limbs(&self, width: usize) -> Vec<Limb> {
        // Documented panic: a silently-truncated operand would corrupt
        // every downstream Montgomery multiplication.
        // flcheck: allow(pf-assert)
        assert!(
            self.limbs.len() <= width,
            "value of {} limbs does not fit padded width {}",
            self.limbs.len(),
            width
        );
        let mut out = self.limbs.clone();
        out.resize(width, 0);
        out
    }

    /// True iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 is even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    /// True iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant limbs.
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Number of significant bits (`k = ⌈log2(m+1)⌉`; 0 for the value 0).
    #[inline]
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u32 - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Returns bit `i` (little-endian); bits beyond `bit_len` are 0.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / LIMB_BITS) as usize;
        match self.limbs.get(limb) {
            Some(l) => (l >> (i % LIMB_BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        let limb = (i / LIMB_BITS) as usize;
        let mask = 1u64 << (i % LIMB_BITS);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= mask;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !mask;
            self.normalize();
        }
    }

    /// Extracts `count` bits starting at bit `offset` as a `u64`
    /// (`count <= 64`). Bits beyond the value are zero.
    ///
    /// Used by the batch-compression unpacker to slice packed plaintexts
    /// out of a big integer without allocating.
    pub fn extract_bits(&self, offset: u32, count: u32) -> u64 {
        // Documented API bound on the return type's width.
        // flcheck: allow(pf-assert)
        assert!(count <= 64, "extract_bits supports at most 64 bits");
        if count == 0 {
            return 0;
        }
        let limb_idx = (offset / LIMB_BITS) as usize;
        let bit_idx = offset % LIMB_BITS;
        let lo = self.limbs.get(limb_idx).copied().unwrap_or(0) >> bit_idx;
        let hi = if bit_idx == 0 {
            0
        } else {
            self.limbs
                .get(limb_idx + 1)
                .copied()
                .unwrap_or(0)
                .checked_shl(LIMB_BITS - bit_idx)
                .unwrap_or(0)
        };
        let word = lo | hi;
        if count == 64 {
            word
        } else {
            word & ((1u64 << count) - 1)
        }
    }

    /// Drops trailing zero limbs to restore canonical form.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &Natural) -> Natural {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s, c) = adc(long[i], b, carry);
            out.push(s);
            carry = c;
        }
        if carry != 0 {
            out.push(carry);
        }
        Natural { limbs: out }
    }

    /// In-place `self += other`.
    pub fn add_assign_ref(&mut self, other: &Natural) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = adc(self.limbs[i], b, carry);
            self.limbs[i] = s;
            carry = c;
            if carry == 0 && i >= other.limbs.len() {
                return; // no more work: carry finished and other exhausted
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`, returning `None` if `other > self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, br) = sbb(self.limbs[i], b, borrow);
            out.push(d);
            borrow = br;
        }
        debug_assert_eq!(borrow, 0);
        Some(Natural::from_limbs(out))
    }

    /// Absolute difference `|self - other|`.
    pub fn abs_diff(&self, other: &Natural) -> Natural {
        match self.checked_sub(other) {
            Some(diff) => diff,
            // self < other, so the reversed subtraction cannot underflow.
            None => other.checked_sub(self).unwrap_or_default(),
        }
    }

    /// `(self - rhs) mod n` for reduced operands (`self < n`, `rhs < n`),
    /// the lifting step of CRT recombination and of Bezout-coefficient
    /// tracking. Total and panic-free: when `self < rhs` the difference is
    /// lifted by `n`, which cannot underflow while `rhs <= self + n`; the
    /// (precondition-violating) remainder case yields zero.
    pub fn mod_sub(&self, rhs: &Natural, n: &Natural) -> Natural {
        debug_assert!(rhs <= &(self + n), "mod_sub requires rhs <= self + n");
        match self.checked_sub(rhs) {
            Some(diff) => diff,
            None => (self + n).checked_sub(rhs).unwrap_or_default(),
        }
    }

    /// Wrapping subtraction modulo `2^(64*width)`: `(self - other) mod R`.
    ///
    /// This is the overflow-recovery subtraction used inside Montgomery
    /// reduction (Algorithm 2, lines 19–22), where intermediate values are
    /// interpreted in a fixed-width residue ring.
    pub fn wrapping_sub_fixed(&self, other: &Natural, width: usize) -> Natural {
        let mut out = Vec::with_capacity(width);
        let mut borrow = 0;
        for i in 0..width {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, br) = sbb(a, b, borrow);
            out.push(d);
            borrow = br;
        }
        Natural::from_limbs(out)
    }

    /// `self * 2^shift + addend`, a fused primitive for base conversion.
    pub fn mul_add_small(&self, factor: Limb, addend: Limb) -> Natural {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = addend;
        for &l in &self.limbs {
            let (lo, hi) = crate::limb::mac(l, factor, carry, 0);
            out.push(lo);
            carry = hi;
        }
        if carry != 0 {
            out.push(carry);
        }
        Natural::from_limbs(out)
    }

    /// Divides by a single limb in place, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub fn div_rem_small(&self, divisor: Limb) -> (Natural, Limb) {
        // Documented panic mirroring primitive `/` semantics.
        // flcheck: allow(pf-assert)
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0; self.limbs.len()];
        let mut rem: Limb = 0;
        for i in (0..self.limbs.len()).rev() {
            let (q, r) = crate::limb::div2by1(rem, self.limbs[i], divisor);
            out[i] = q;
            rem = r;
        }
        (Natural::from_limbs(out), rem)
    }

    /// Square of `self` (delegates to the multiplication dispatcher).
    pub fn square(&self) -> Natural {
        crate::mul::mul(self, self)
    }

    /// `self^exp` by binary exponentiation (plain, not modular).
    ///
    /// Intended for small exponents such as `n^2` in Paillier; modular
    /// exponentiation lives in [`crate::modpow`].
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = crate::mul::mul(&acc, &base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.square();
            }
        }
        acc
    }

    /// Quotient and remainder of Euclidean division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero; use [`Natural::checked_div_rem`] for a
    /// fallible variant.
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        // Documented panic mirroring primitive `/` semantics.
        // flcheck: allow(pf-expect)
        self.checked_div_rem(divisor).expect("division by zero")
    }

    /// Fallible quotient/remainder.
    pub fn checked_div_rem(&self, divisor: &Natural) -> crate::Result<(Natural, Natural)> {
        crate::div::div_rem(self, divisor)
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show hex for debuggability without the cost of decimal conversion.
        write!(f, "Natural(0x{})", self.to_hex())
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal_string())
    }
}

// --- operator impls (reference forms are primary) ---

impl Add for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        self.add_ref(rhs)
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        self.add_ref(&rhs)
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for &Natural {
    type Output = Natural;
    /// # Panics
    /// Panics on underflow; use [`Natural::checked_sub`] to handle it.
    fn sub(self, rhs: &Natural) -> Natural {
        // Documented panic mirroring primitive `-` semantics.
        self.checked_sub(rhs)
            // flcheck: allow(pf-expect)
            .expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(self, rhs: Natural) -> Natural {
        (&self) - (&rhs)
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = (&*self) - rhs;
    }
}

impl Mul for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        crate::mul::mul(self, rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        crate::mul::mul(&self, &rhs)
    }
}

impl Rem for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Natural {
            fn from(v: $t) -> Self {
                Natural::from_limbs(vec![v as Limb])
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as Limb, (v >> 64) as Limb])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(&n(5) + &Natural::zero(), n(5));
        assert_eq!(&n(5) * &Natural::one(), n(5));
        assert_eq!(&n(5) * &Natural::zero(), Natural::zero());
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let a = Natural::from_limbs(vec![7, 0, 0]);
        assert_eq!(a.limb_len(), 1);
        assert_eq!(a, n(7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let max = Natural::from(u64::MAX);
        let sum = &max + &Natural::one();
        assert_eq!(sum, n(1u128 << 64));
        assert_eq!(sum.limb_len(), 2);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = n(u64::MAX as u128 * 3 + 17);
        let b = n(u64::MAX as u128 + 5);
        let expected = &a + &b;
        a += &b;
        assert_eq!(a, expected);
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(n(3).checked_sub(&n(4)), None);
        assert_eq!(n(4).checked_sub(&n(4)), Some(Natural::zero()));
        let big = n(1u128 << 64);
        assert_eq!(big.checked_sub(&Natural::one()), Some(n((1u128 << 64) - 1)));
    }

    #[test]
    fn abs_diff_symmetric() {
        assert_eq!(n(10).abs_diff(&n(3)), n(7));
        assert_eq!(n(3).abs_diff(&n(10)), n(7));
    }

    #[test]
    fn ordering_compares_magnitude() {
        assert!(n(1u128 << 64) > n(u64::MAX as u128));
        assert!(n(5) < n(6));
        assert_eq!(n(42).cmp(&n(42)), Ordering::Equal);
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(Natural::one().bit_len(), 1);
        assert_eq!(n(0b1011).bit_len(), 4);
        assert_eq!(n(1u128 << 64).bit_len(), 65);
        let v = n(0b1011);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(100));
    }

    #[test]
    fn set_bit_grows_and_clears() {
        let mut v = Natural::zero();
        v.set_bit(70, true);
        assert_eq!(v, n(1u128 << 70));
        v.set_bit(70, false);
        assert!(v.is_zero());
        assert_eq!(v.limb_len(), 0);
    }

    #[test]
    fn extract_bits_straddles_limb_boundary() {
        // value = 0xABCD << 60 straddles the limb 0/1 boundary
        let v = n(0xABCDu128 << 60);
        assert_eq!(v.extract_bits(60, 16), 0xABCD);
        assert_eq!(v.extract_bits(60, 8), 0xCD);
        assert_eq!(v.extract_bits(64, 12), 0xABC);
        assert_eq!(v.extract_bits(200, 16), 0);
    }

    #[test]
    fn extract_bits_full_word() {
        let v = n(u64::MAX as u128);
        assert_eq!(v.extract_bits(0, 64), u64::MAX);
        assert_eq!(v.extract_bits(1, 64), u64::MAX >> 1);
    }

    #[test]
    fn div_rem_small_roundtrip() {
        let v = n(123_456_789_012_345_678_901_234_567u128);
        let (q, r) = v.div_rem_small(97);
        assert_eq!(&q.mul_add_small(97, r), &v);
        assert!(r < 97);
    }

    #[test]
    fn pow_small_exponents() {
        assert_eq!(n(3).pow(0), Natural::one());
        assert_eq!(n(3).pow(4), n(81));
        assert_eq!(n(2).pow(100), {
            let mut v = Natural::one();
            for _ in 0..100 {
                v = &v + &v;
            }
            v
        });
    }

    #[test]
    fn padded_limbs_roundtrip() {
        let v = n(42);
        assert_eq!(v.to_padded_limbs(4), vec![42, 0, 0, 0]);
        assert_eq!(Natural::from_limbs(v.to_padded_limbs(4)), v);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_limbs_overflow_panics() {
        n(1u128 << 64).to_padded_limbs(1);
    }

    #[test]
    fn wrapping_sub_fixed_wraps() {
        // (0 - 1) mod 2^128 == 2^128 - 1
        let r = Natural::zero().wrapping_sub_fixed(&Natural::one(), 2);
        assert_eq!(r, n(u128::MAX));
    }

    #[test]
    fn even_odd() {
        assert!(Natural::zero().is_even());
        assert!(n(2).is_even());
        assert!(n(3).is_odd());
    }
}
