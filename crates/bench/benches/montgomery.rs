//! Ablation bench: basic Montgomery (paper Algorithm 1) vs flat CIOS
//! (Algorithm 2) vs lane-partitioned CIOS, across the paper's key sizes.
//!
//! The paper selects CIOS following Koç et al. ("the CIOS method has the
//! lowest running time and takes the least storage space"); this bench
//! verifies that choice holds in this implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpint::{cios, BarrettCtx, MontgomeryCtx, Natural};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_odd(bits: u32, rng: &mut ChaCha8Rng) -> Natural {
    let mut n = mpint::random::random_bits(rng, bits);
    n.set_bit(0, true);
    n
}

fn bench_montgomery(c: &mut Criterion) {
    let mut group = c.benchmark_group("montgomery_mul");
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    for bits in [1024u32, 2048, 4096] {
        let modulus = random_odd(bits, &mut rng);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus");
        let a = ctx.to_mont(&(&mpint::random::random_bits(&mut rng, bits - 1) % &modulus));
        let b = ctx.to_mont(&(&mpint::random::random_bits(&mut rng, bits - 1) % &modulus));
        let s = ctx.width();
        let ap = a.to_padded_limbs(s);
        let bp = b.to_padded_limbs(s);
        let np = modulus.to_padded_limbs(s);
        let n0 = ctx.n0_inv();

        group.bench_with_input(BenchmarkId::new("algorithm1", bits), &bits, |bench, _| {
            bench.iter(|| black_box(ctx.mont_mul(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("cios_flat", bits), &bits, |bench, _| {
            bench.iter(|| black_box(cios::mont_mul(black_box(&ap), black_box(&bp), &np, n0)))
        });
        group.bench_with_input(
            BenchmarkId::new("cios_partitioned_32", bits),
            &bits,
            |bench, _| {
                bench.iter(|| {
                    black_box(cios::mont_mul_partitioned(
                        black_box(&ap),
                        black_box(&bp),
                        &np,
                        n0,
                        32,
                    ))
                })
            },
        );
        // Barrett reduction: the no-domain-conversion alternative the
        // paper's Montgomery choice is measured against.
        let barrett = BarrettCtx::new(&modulus).expect("modulus > 1");
        let ar = &a % &modulus;
        let br = &b % &modulus;
        group.bench_with_input(BenchmarkId::new("barrett", bits), &bits, |bench, _| {
            bench.iter(|| black_box(barrett.mod_mul(black_box(&ar), black_box(&br))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_montgomery
}
criterion_main!(benches);
