//! Batch compression (paper Sec. IV-C, Eq. 9 and 11–13).
//!
//! Packs `n = ⌊k / (r + b)⌋` quantized slots into one `k`-bit plaintext
//! integer, so one Paillier encryption/ciphertext/homomorphic-addition
//! carries `n` gradient components. Because every slot keeps its `b` guard
//! bits, *integer addition of packed words is slot-wise addition* — which
//! is exactly what Paillier's ciphertext multiplication produces — with no
//! carry ever crossing a slot boundary for up to `2^b` aggregated terms.

use mpint::Natural;

use crate::quantize::{Quantizer, QuantizerConfig};
use crate::{Error, Result};

/// Packs/unpacks gradient vectors into multi-precision plaintexts.
#[derive(Debug, Clone)]
pub struct BatchCodec {
    quantizer: Quantizer,
    key_bits: u32,
    slots_per_word: usize,
}

impl BatchCodec {
    /// Builds a codec for a `key_bits`-bit plaintext space.
    pub fn new(cfg: QuantizerConfig, key_bits: u32) -> Result<Self> {
        let quantizer = Quantizer::new(cfg)?;
        let slot_bits = cfg.slot_bits();
        // One slot of headroom is kept: the packed value must stay below
        // the Paillier modulus n (which has exactly key_bits bits), so we
        // leave the top slot free rather than risk z >= n.
        let slots = (key_bits / slot_bits) as usize;
        let slots_per_word = slots.saturating_sub(1);
        if slots_per_word == 0 {
            return Err(Error::KeyTooSmall {
                key_bits,
                slot_bits,
            });
        }
        Ok(BatchCodec {
            quantizer,
            key_bits,
            slots_per_word,
        })
    }

    /// The single-value quantizer in use.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Plaintexts packed per big integer (the paper's
    /// `n = ⌊k/(r+⌈log₂p⌉)⌋`, minus the reserved top slot).
    pub fn slots_per_word(&self) -> usize {
        self.slots_per_word
    }

    /// Key size this codec packs for.
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of packed words needed for `count` values.
    pub fn words_for(&self, count: usize) -> usize {
        count.div_ceil(self.slots_per_word)
    }

    /// Compression ratio for `count` values (paper Eq. 11): plaintext
    /// count divided by ciphertext count.
    pub fn compression_ratio(&self, count: usize) -> f64 {
        if count == 0 {
            return 1.0;
        }
        count as f64 / self.words_for(count) as f64
    }

    /// Plaintext-space utilization (paper Eq. 12).
    pub fn plaintext_space_utilization(&self, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let slot_bits = self.quantizer.config().slot_bits() as f64;
        (count as f64 * slot_bits) / (self.key_bits as f64 * self.words_for(count) as f64)
    }

    /// Quantizes and packs a gradient vector into big-integer plaintexts
    /// (Eq. 9 layout: slot `i` of a word occupies bits
    /// `[i·(r+b), (i+1)·(r+b))`).
    // flcheck: secret(values)
    // flcheck: det-sink — packed plaintext words become ciphertext bytes
    // Slot indices are bounded by `slots_per_word`, itself bounded by the
    // plaintext bit budget (≪ 2^32), so the index cast cannot truncate.
    // flcheck: widen-ok(i)
    pub fn pack(&self, values: &[f64]) -> Result<Vec<Natural>> {
        let slot_bits = self.quantizer.config().slot_bits();
        let mut words = Vec::with_capacity(self.words_for(values.len()));
        for chunk in values.chunks(self.slots_per_word) {
            let mut word = Natural::zero();
            for (i, &v) in chunk.iter().enumerate() {
                // Packing runs on the data owner's host before encryption;
                // its timing is visible only to the plaintext owner, never
                // to the aggregator.
                // flcheck: allow(ct-taint)
                let q = self.quantizer.quantize(v)?;
                // Deliberate sparsity fast path: skipping zero slots
                // branches on the (owner-local) quantized value.
                // flcheck: allow(ct-taint)
                if q != 0 {
                    // Owner-local, as above.
                    // flcheck: allow(ct-taint)
                    word.add_assign_ref(&Natural::from(q).shl_bits(i as u32 * slot_bits));
                }
            }
            words.push(word);
        }
        Ok(words)
    }

    /// Unpacks `count` single (non-aggregated) values.
    pub fn unpack(&self, words: &[Natural], count: usize) -> Result<Vec<f64>> {
        self.unpack_sums(words, count, 1)
    }

    /// Unpacks `count` slots, each holding the sum of `terms` quantized
    /// values (the post-aggregation decode path). Fails if `terms` exceeds
    /// the guard-bit capacity.
    // flcheck: det-sink — decoded aggregate values are result content
    // Slot indices are bounded by `slots_per_word` (≪ 2^32): no truncation.
    // flcheck: widen-ok(slot)
    pub fn unpack_sums(&self, words: &[Natural], count: usize, terms: u32) -> Result<Vec<f64>> {
        self.quantizer.check_terms(terms)?;
        let available = words.len() * self.slots_per_word;
        if count > available {
            return Err(Error::NotEnoughData {
                requested: count,
                available,
            });
        }
        let slot_bits = self.quantizer.config().slot_bits();
        let mut out = Vec::with_capacity(count);
        for (i, word) in words.iter().enumerate() {
            let base = i * self.slots_per_word;
            for slot in 0..self.slots_per_word {
                if base + slot >= count {
                    break;
                }
                let z = word.extract_bits(slot as u32 * slot_bits, slot_bits);
                out.push(self.quantizer.dequantize_sum(z, terms));
            }
        }
        Ok(out)
    }

    /// Slot-wise plain addition of packed words — the plaintext image of
    /// Paillier's homomorphic addition, used by tests and the CPU
    /// reference path. Both slices must have equal length.
    pub fn add_packed(&self, a: &[Natural], b: &[Natural]) -> Vec<Natural> {
        // Documented precondition: misaligned packs would add wrong slots.
        // flcheck: allow(pf-assert)
        assert_eq!(a.len(), b.len(), "packed operands must align");
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    /// Upper bound on the packed word value: must stay below `2^key_bits`
    /// so it is a valid Paillier plaintext.
    // `slots_per_word` is derived from the key/slot bit budget (≪ 2^32).
    // flcheck: widen-ok(slots_per_word)
    pub fn max_word_bits(&self) -> u32 {
        (self.slots_per_word as u32) * self.quantizer.config().slot_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec(key_bits: u32, participants: u32) -> BatchCodec {
        BatchCodec::new(QuantizerConfig::paper_default(participants), key_bits).unwrap()
    }

    #[test]
    fn paper_capacity_at_1024() {
        // 32-bit slots in a 1024-bit key: 32 slots, one reserved -> 31.
        let c = codec(1024, 4);
        assert_eq!(c.slots_per_word(), 31);
        assert!(c.compression_ratio(31 * 100) > 30.0);
    }

    #[test]
    fn capacity_doubles_with_key_size() {
        let c1 = codec(1024, 4);
        let c2 = codec(2048, 4);
        let c4 = codec(4096, 4);
        assert_eq!(c2.slots_per_word(), 63);
        assert_eq!(c4.slots_per_word(), 127);
        assert!(c1.slots_per_word() < c2.slots_per_word());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = codec(1024, 4);
        let values: Vec<f64> = (0..100).map(|i| (i as f64 / 50.0) - 1.0).collect();
        let packed = c.pack(&values).unwrap();
        assert_eq!(packed.len(), c.words_for(100));
        let back = c.unpack(&packed, 100).unwrap();
        let bound = c.quantizer().max_error();
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_words_fit_plaintext_space() {
        let c = codec(256, 4);
        let values = vec![1.0; c.slots_per_word() * 3]; // all-max slots
        for w in c.pack(&values).unwrap() {
            assert!(w.bit_len() <= c.max_word_bits());
            assert!(c.max_word_bits() < 256);
        }
    }

    #[test]
    fn slotwise_addition_matches_elementwise_sum() {
        let c = codec(512, 4);
        let a: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 0.9).collect();
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos() * 0.9).collect();
        let pa = c.pack(&a).unwrap();
        let pb = c.pack(&b).unwrap();
        let sum = c.add_packed(&pa, &pb);
        let decoded = c.unpack_sums(&sum, 40, 2).unwrap();
        let bound = 2.0 * c.quantizer().max_error();
        for i in 0..40 {
            assert!((decoded[i] - (a[i] + b[i])).abs() <= bound, "slot {i}");
        }
    }

    #[test]
    fn aggregation_up_to_guard_capacity() {
        let c = codec(512, 4); // b = 2 -> up to 4 terms
        let parties: Vec<Vec<f64>> = (0..4)
            .map(|p| {
                (0..20)
                    .map(|i| ((p * 20 + i) as f64 * 0.01) - 0.3)
                    .collect()
            })
            .collect();
        let mut acc = c.pack(&parties[0]).unwrap();
        for p in &parties[1..] {
            acc = c.add_packed(&acc, &c.pack(p).unwrap());
        }
        let decoded = c.unpack_sums(&acc, 20, 4).unwrap();
        let bound = 4.0 * c.quantizer().max_error();
        for i in 0..20 {
            let expected: f64 = parties.iter().map(|p| p[i]).sum();
            assert!((decoded[i] - expected).abs() <= bound);
        }
    }

    #[test]
    fn too_many_terms_rejected() {
        let c = codec(512, 4);
        let packed = c.pack(&[0.0; 4]).unwrap();
        assert!(matches!(
            c.unpack_sums(&packed, 4, 5),
            Err(Error::OverflowBitsExhausted { .. })
        ));
    }

    #[test]
    fn unpack_beyond_data_rejected() {
        let c = codec(512, 4);
        let packed = c.pack(&[0.5; 10]).unwrap();
        let cap = packed.len() * c.slots_per_word();
        assert!(matches!(
            c.unpack(&packed, cap + 1),
            Err(Error::NotEnoughData { .. })
        ));
    }

    #[test]
    fn key_too_small_rejected() {
        assert!(matches!(
            BatchCodec::new(QuantizerConfig::paper_default(4), 32),
            Err(Error::KeyTooSmall { .. })
        ));
        // 64 bits = exactly 2 slots, one reserved -> 1 usable: OK.
        assert_eq!(codec(64, 4).slots_per_word(), 1);
    }

    #[test]
    fn compression_ratio_bounded_by_eq11() {
        let c = codec(1024, 4);
        let cfg = c.quantizer().config();
        let upper = c.key_bits() as f64 / cfg.slot_bits() as f64;
        for count in [1usize, 31, 32, 1000, 12345] {
            assert!(c.compression_ratio(count) <= upper + 1e-9);
        }
        // Large vectors approach the bound.
        assert!(c.compression_ratio(31 * 1000) > upper - 1.5);
    }

    #[test]
    fn psu_bounded_by_one() {
        let c = codec(1024, 4);
        for count in [1usize, 31, 62, 1000] {
            let psu = c.plaintext_space_utilization(count);
            assert!(psu > 0.0 && psu <= 1.0, "count {count}: psu {psu}");
        }
        assert_eq!(c.plaintext_space_utilization(0), 0.0);
    }

    #[test]
    fn empty_input_packs_to_nothing() {
        let c = codec(512, 4);
        assert!(c.pack(&[]).unwrap().is_empty());
        assert!(c.unpack(&[], 0).unwrap().is_empty());
        assert_eq!(c.compression_ratio(0), 1.0);
    }

    #[test]
    fn partial_last_word() {
        let c = codec(512, 2); // slot 32 bits -> 16 slots - 1 = 15 per word
        let values = vec![0.25; 20]; // 15 + 5
        let packed = c.pack(&values).unwrap();
        assert_eq!(packed.len(), 2);
        let back = c.unpack(&packed, 20).unwrap();
        assert_eq!(back.len(), 20);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_add_panics() {
        let c = codec(512, 4);
        let a = c.pack(&[0.1; 5]).unwrap();
        c.add_packed(&a, &[]);
    }
}
