//! Optimizers: SGD and Adam with L2 regularization.
//!
//! Paper Sec. VI-B parameter settings: "the penalty method is set to L2
//! normalization with a coefficient equal to 0.01 for all models; the
//! batch size is set as 1024, and Adam optimizer is used to train the
//! models."

// flcheck: allow-file(pf-index) — Adam's moment vectors are resized to
// `weights.len()` at the top of `step`, bounding every index in the loop.
// flcheck: allow-file(pf-assert) — the dimension check is the documented
// `step` contract; silently zipping short would corrupt training.

/// A first-order optimizer stepping dense parameter vectors.
pub trait Optimizer: Send {
    /// Applies one update: `w <- w - step(grad + l2·w)`.
    fn step(&mut self, weights: &mut [f64], grads: &[f64]);

    /// Resets internal state (moments, step counter).
    fn reset(&mut self);
}

/// Plain SGD (paper Eq. 1: `W_{t+1} = W_t − α_t ∇G_t`).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate α.
    pub learning_rate: f64,
    /// L2 coefficient λ.
    pub l2: f64,
}

impl Sgd {
    /// SGD with the paper's default L2 = 0.01.
    pub fn new(learning_rate: f64) -> Self {
        Sgd {
            learning_rate,
            l2: 0.01,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, weights: &mut [f64], grads: &[f64]) {
        assert_eq!(
            weights.len(),
            grads.len(),
            "weight/gradient dimension mismatch"
        );
        for (w, &g) in weights.iter_mut().zip(grads) {
            *w -= self.learning_rate * (g + self.l2 * *w);
        }
    }

    fn reset(&mut self) {}
}

/// Adam (Kingma & Ba), the paper's default optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability ε.
    pub epsilon: f64,
    /// L2 coefficient λ.
    pub l2: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with standard hyper-parameters and the paper's L2 = 0.01.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            l2: 0.01,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, weights: &mut [f64], grads: &[f64]) {
        assert_eq!(
            weights.len(),
            grads.len(),
            "weight/gradient dimension mismatch"
        );
        if self.m.len() != weights.len() {
            self.m = vec![0.0; weights.len()];
            self.v = vec![0.0; weights.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..weights.len() {
            let g = grads[i] + self.l2 * weights[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            weights[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(w) = (w - 3)^2, gradient 2(w - 3).
    fn quad_grad(w: f64) -> f64 {
        2.0 * (w - 3.0)
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd {
            learning_rate: 0.1,
            l2: 0.0,
        };
        let mut w = vec![0.0];
        for _ in 0..200 {
            let g = vec![quad_grad(w[0])];
            opt.step(&mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 1e-6, "w = {}", w[0]);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.05);
        opt.l2 = 0.0;
        let mut w = vec![0.0];
        for _ in 0..2000 {
            let g = vec![quad_grad(w[0])];
            opt.step(&mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn l2_pulls_towards_zero() {
        // With strong L2 the fixed point moves below the unregularized
        // optimum of 3.0.
        let mut opt = Sgd {
            learning_rate: 0.05,
            l2: 1.0,
        };
        let mut w = vec![0.0];
        for _ in 0..500 {
            let g = vec![quad_grad(w[0])];
            opt.step(&mut w, &g);
        }
        assert!(w[0] < 2.5 && w[0] > 0.0, "w = {}", w[0]);
    }

    #[test]
    fn adam_reset_clears_moments() {
        let mut opt = Adam::new(0.1);
        let mut w = vec![1.0, 2.0];
        opt.step(&mut w, &[0.5, -0.5]);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    fn adam_handles_dimension_change_after_reset() {
        let mut opt = Adam::new(0.1);
        let mut w2 = vec![1.0, 2.0];
        opt.step(&mut w2, &[0.1, 0.1]);
        let mut w3 = vec![1.0, 2.0, 3.0];
        // Internal buffers re-size automatically.
        opt.step(&mut w3, &[0.1, 0.1, 0.1]);
        assert_eq!(w3.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_shapes_panic() {
        Sgd::new(0.1).step(&mut [0.0], &[1.0, 2.0]);
    }
}
