//! Hand-rolled Rust lexer.
//!
//! flcheck carries **zero external dependencies** (the build environment
//! has no registry access), so instead of `syn` it tokenizes Rust source
//! directly. The lexer understands everything needed to walk real-world
//! code reliably: line/block comments (nested), string/char/byte/raw-string
//! literals, lifetimes vs char literals, numeric literals, multi-character
//! operators, and bracket kinds — each token tagged with its 1-based line.
//!
//! Comments are returned out-of-band (they carry `flcheck:` directives);
//! the token stream itself is comment-free so rules never trip on
//! violations quoted inside docs.

/// Token kinds relevant to the rule engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Num,
    /// String / char / byte literal (contents not preserved).
    Lit,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Operator or punctuation; multi-character operators are single
    /// tokens (`==`, `!=`, `<=`, `>=`, `&&`, `||`, `->`, `=>`, `::`,
    /// `..`, `..=`).
    Op,
    /// `(`, `[`, `{`.
    Open,
    /// `)`, `]`, `}`.
    Close,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind tag.
    pub kind: TokKind,
    /// Source text (for `Lit`, a placeholder; contents are irrelevant).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the operator/punctuation `s`.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// A comment with its location (directives are parsed from these).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: u32,
}

/// Lexer output: code tokens plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs consume to end-of-file rather
/// than erroring: an analyzer must degrade gracefully on torn input.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let begin = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[begin..i].to_string(),
                    line: start_line,
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let begin = i + 2;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(begin);
                out.comments.push(Comment {
                    text: src[begin..end].to_string(),
                    line: start_line,
                });
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                push_tok!(TokKind::Lit, "\"..\"".to_string(), start_line);
            }
            'r' | 'b' if is_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                push_tok!(TokKind::Lit, "\"..\"".to_string(), start_line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if let Some(end) = char_literal_end(bytes, i) {
                    i = end;
                    push_tok!(TokKind::Lit, "'..'".to_string(), start_line);
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    push_tok!(TokKind::Lifetime, src[i..j].to_string(), start_line);
                    i = j;
                }
            }
            'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes
                    .get(i + 2)
                    .is_some_and(|&b| is_ident_char(b) && !b.is_ascii_digit()) =>
            {
                // Raw identifier `r#fn`: one Ident token whose text keeps the
                // `r#` prefix, so `r#fn` never masquerades as the `fn` keyword.
                let begin = i;
                i += 2;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                push_tok!(TokKind::Ident, src[begin..i].to_string(), start_line);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let begin = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                push_tok!(TokKind::Ident, src[begin..i].to_string(), start_line);
            }
            c if c.is_ascii_digit() => {
                let begin = i;
                while i < bytes.len()
                    && (is_ident_char(bytes[i]) || bytes[i] == b'.')
                    && !(bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.'))
                {
                    // `1..8` must not swallow the range dots.
                    i += 1;
                }
                push_tok!(TokKind::Num, src[begin..i].to_string(), start_line);
            }
            '(' | '[' | '{' => {
                push_tok!(TokKind::Open, c.to_string(), start_line);
                i += 1;
            }
            ')' | ']' | '}' => {
                push_tok!(TokKind::Close, c.to_string(), start_line);
                i += 1;
            }
            _ => {
                let two = src.get(i..i + 2).unwrap_or("");
                let three = src.get(i..i + 3).unwrap_or("");
                let op = if three == "..=" {
                    three
                } else if matches!(
                    two,
                    "==" | "!="
                        | "<="
                        | ">="
                        | "&&"
                        | "||"
                        | "->"
                        | "=>"
                        | "::"
                        | ".."
                        | "+="
                        | "-="
                        | "*="
                        | "/="
                        | "%="
                        | "^="
                        | "|="
                        | "&="
                        | "<<"
                        | ">>"
                ) {
                    two
                } else {
                    &src[i..i + c.len_utf8()]
                };
                push_tok!(TokKind::Op, op.to_string(), start_line);
                i += op.len();
            }
        }
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `r"`, `r#"`, `br"`, `b"`, `b'`... a raw/byte string starting here?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    j > i && j < bytes.len() && (bytes[j] == b'"' || (bytes[j] == b'\'' && bytes[i] == b'b'))
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped newline (line continuation) still ends a line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        // Byte char literal `b'x'`; an escape consumes the *next* byte too,
        // so `b'\''` does not stop at the escaped quote.
        i += 1;
        if i < bytes.len() && bytes[i] == b'\\' {
            i += 2;
        }
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    let mut hashes = 0usize;
    if i < bytes.len() && bytes[i] == b'r' {
        i += 1;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
    }
    if i < bytes.len() && bytes[i] == b'"' {
        i += 1;
        'outer: while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            if bytes[i] == b'"' {
                let mut k = 0;
                while k < hashes {
                    if bytes.get(i + 1 + k) != Some(&b'#') {
                        i += 1;
                        continue 'outer;
                    }
                    k += 1;
                }
                return i + 1 + hashes;
            }
            i += 1;
        }
    }
    i
}

/// Returns the index one past a char literal starting at `i` (which holds
/// `'`), or `None` when this is a lifetime instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // escaped char: scan to closing quote
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return if j < bytes.len() { Some(j + 1) } else { None };
    }
    // `'x'` — one scalar then a quote. Multi-byte UTF-8 chars allowed.
    let char_len = utf8_len(bytes[j]);
    let close = j + char_len;
    if bytes.get(close) == Some(&b'\'') {
        // `'a'` is a char literal; but `'a' ` in `x<'a>` can't occur since
        // lifetimes in angle brackets are not followed by `'`.
        Some(close + 1)
    } else {
        None
    }
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_out_of_band() {
        let l = lex("fn a() {} // trailing unwrap()\n/* block\nunwrap */ fn b() {}");
        assert_eq!(
            idents("fn a() {} // x\nfn b() {}"),
            vec!["fn", "a", "fn", "b"]
        );
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = "let s = \"call .unwrap() now\"; let r = r\"also.unwrap()\"; \
                   let h = r#\"hash.unwrap()\"#; let b = b\"byte.unwrap()\";";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let l = lex("a == b && c <= d .. e ..= f");
        let ops: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Op)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "&&", "<=", "..", "..="]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numeric_literals_do_not_eat_range_dots() {
        let l = lex("for i in 0..8 {}");
        assert!(l.tokens.iter().any(|t| t.is_op("..")));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "8"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn nested_block_comments_swallow_lock_syntax() {
        // Lock-acquisition syntax inside a nested block comment must not
        // leak tokens: a phantom `lock` ident here would seed the lock
        // graph with an acquisition that does not exist.
        let src = "/* outer /* let g = self.deques.lock(); */ Mutex::new(0) */ fn f() {}";
        let l = lex(src);
        assert_eq!(idents(src), vec!["fn", "f"]);
        assert!(!l.tokens.iter().any(|t| t.is_ident("lock")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("Mutex")));
        // The whole nested construct is one comment, closed at the outer
        // `*/` — not at the inner one.
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("Mutex"));
    }

    #[test]
    fn raw_strings_swallow_lock_syntax() {
        // Raw strings (any hash depth) documenting lock idioms must not
        // produce `lock` / `Mutex` idents or acquisition call shapes.
        let src = "let a = r\"self.deques.lock()\"; \
                   let b = r#\"Mutex::new(lock(&x))\"#; \
                   let c = br##\"table.lock() /* \"# */\"##;";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("lock")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("Mutex")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("deques")));
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "b", "let", "c"],
            "raw-string contents must stay out of the ident stream"
        );
        // No comment is opened by the `/*` inside the raw string.
        assert!(l.comments.is_empty());
    }

    /// Full (kind, text) stream — the parser consumes exactly this.
    fn stream(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn token_stream_lifetimes_vs_char_literals() {
        use TokKind::*;
        // `'a` (lifetime), `'a'` (char), `'\''` (escaped char), `'_`
        // (anonymous lifetime), labeled loop `'outer:` — every quote form
        // the parser can meet in a signature or body.
        let got = stream("fn f<'a>(x: &'a u8) { let c = 'a'; let q = '\\''; 'outer: loop {} }");
        let want: Vec<(TokKind, &str)> = vec![
            (Ident, "fn"),
            (Ident, "f"),
            (Op, "<"),
            (Lifetime, "'a"),
            (Op, ">"),
            (Open, "("),
            (Ident, "x"),
            (Op, ":"),
            (Op, "&"),
            (Lifetime, "'a"),
            (Ident, "u8"),
            (Close, ")"),
            (Open, "{"),
            (Ident, "let"),
            (Ident, "c"),
            (Op, "="),
            (Lit, "'..'"),
            (Op, ";"),
            (Ident, "let"),
            (Ident, "q"),
            (Op, "="),
            (Lit, "'..'"),
            (Op, ";"),
            (Lifetime, "'outer"),
            (Op, ":"),
            (Ident, "loop"),
            (Open, "{"),
            (Close, "}"),
            (Close, "}"),
        ];
        let want: Vec<(TokKind, String)> = want.into_iter().map(|(k, t)| (k, t.into())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn token_stream_nested_block_comments() {
        use TokKind::*;
        // Nesting must balance: an unwrap() two comment levels deep stays
        // out-of-band, and the token after the comment keeps its line.
        let src = "let a = 1; /* x /* y.unwrap() */ /* z */ w */ let b = 2;";
        let got = stream(src);
        let want: Vec<(TokKind, String)> = [
            (Ident, "let"),
            (Ident, "a"),
            (Op, "="),
            (Num, "1"),
            (Op, ";"),
            (Ident, "let"),
            (Ident, "b"),
            (Op, "="),
            (Num, "2"),
            (Op, ";"),
        ]
        .into_iter()
        .map(|(k, t)| (k, t.to_string()))
        .collect();
        assert_eq!(got, want);
        let l = lex(src);
        // One top-level comment: both inner `/* .. */` pairs nest inside it.
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn token_stream_raw_strings_with_hashes() {
        use TokKind::*;
        // `r##"..."#..."##` must not terminate at the single-hash quote,
        // and a raw byte string `br#".."#` is one literal.
        let src = "let s = r##\"quote \"# inside\"##; let b = br#\"x.unwrap()\"#; done();";
        let got = stream(src);
        let want: Vec<(TokKind, String)> = [
            (Ident, "let"),
            (Ident, "s"),
            (Op, "="),
            (Lit, "\"..\""),
            (Op, ";"),
            (Ident, "let"),
            (Ident, "b"),
            (Op, "="),
            (Lit, "\"..\""),
            (Op, ";"),
            (Ident, "done"),
            (Open, "("),
            (Close, ")"),
            (Op, ";"),
        ]
        .into_iter()
        .map(|(k, t)| (k, t.to_string()))
        .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn escaped_byte_char_does_not_leak_a_stray_quote() {
        // `b'\''` once left the closing quote behind, poisoning everything
        // after it into a bogus lifetime/char run.
        let got = stream("let q = b'\\''; next();");
        assert!(
            got.iter().any(|(k, t)| *k == TokKind::Ident && t == "next"),
            "{got:?}"
        );
        assert!(
            !got.iter().any(|(k, _)| *k == TokKind::Lifetime),
            "no stray lifetime: {got:?}"
        );
    }

    #[test]
    fn raw_identifiers_do_not_masquerade_as_keywords() {
        let got = stream("let r#fn = 1; call(r#match);");
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
        assert!(
            !got.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"),
            "r#fn must not produce a bare `fn` token: {got:?}"
        );
    }

    #[test]
    fn escaped_newline_in_string_counts_lines() {
        let l = lex("let s = \"a\\\nb\";\nlet t = 1;");
        let t = l.tokens.iter().find(|t| t.is_ident("t")).expect("t");
        assert_eq!(t.line, 3);
    }
}
