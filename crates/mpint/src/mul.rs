//! Multi-precision multiplication: schoolbook and Karatsuba.
//!
//! The paper's GPU kernel multiplies limb-by-limb across threads
//! (Sec. IV-A1: "multiply the limbs with the limbs in other threads one by
//! one, aggregate and propagate"); the CPU reference here is the classic
//! operand-scanning schoolbook product, with Karatsuba above a tuned
//! threshold for the large operands produced by 2048/4096-bit keys.

// flcheck: allow-file(pf-index) — product indices `out[i + j]` are bounded
// by the `a.len() + b.len()` allocation; this is the workspace's second
// hottest loop after CIOS.

use crate::limb::{mac, Limb};
use crate::natural::Natural;

/// Operand size (in limbs) above which Karatsuba beats schoolbook.
///
/// Determined by the `mpint_mul` Criterion bench; see DESIGN.md §5.6.
pub(crate) const KARATSUBA_THRESHOLD: usize = 24;

/// Dispatching product used by the `Mul` operator impls.
pub(crate) fn mul(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let (small, large) = if a.limb_len() <= b.limb_len() {
        (a, b)
    } else {
        (b, a)
    };
    if small.limb_len() < KARATSUBA_THRESHOLD {
        schoolbook(a.limbs(), b.limbs())
    } else {
        karatsuba(large.limbs(), small.limbs())
    }
}

/// Schoolbook (operand-scanning) multiplication, `O(n*m)` limb products.
pub(crate) fn schoolbook(a: &[Limb], b: &[Limb]) -> Natural {
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue; // common for padded operands
        }
        let mut carry = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(bj, ai, out[i + j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
    Natural::from_limbs(out)
}

/// Karatsuba multiplication: splits each operand at `m = max/2` limbs and
/// recombines three half-size products, `O(n^1.585)`.
fn karatsuba(a: &[Limb], b: &[Limb]) -> Natural {
    debug_assert!(a.len() >= b.len());
    if b.len() < KARATSUBA_THRESHOLD {
        return schoolbook(a, b);
    }
    let m = a.len() / 2;
    // a = a1*B^m + a0 ; b = b1*B^m + b0 (b1 may be empty)
    let (a0s, a1s) = a.split_at(m.min(a.len()));
    let (b0s, b1s) = b.split_at(m.min(b.len()));
    let a0 = Natural::from_limbs(a0s.to_vec());
    let a1 = Natural::from_limbs(a1s.to_vec());
    let b0 = Natural::from_limbs(b0s.to_vec());
    let b1 = Natural::from_limbs(b1s.to_vec());

    let z0 = mul(&a0, &b0);
    let z2 = mul(&a1, &b1);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    let z1 = {
        let sa = &a0 + &a1;
        let sb = &b0 + &b1;
        // (a0+a1)(b0+b1) = z0 + z2 + a0*b1 + a1*b0 >= z0 + z2, so the
        // middle term is non-negative and the subtractions cannot fail.
        let p = mul(&sa, &sb);
        p.checked_sub(&z0)
            .and_then(|t| t.checked_sub(&z2))
            .unwrap_or_default()
    };

    // result = z2*B^{2m} + z1*B^m + z0
    let mut acc = shl_limbs(&z2, 2 * m);
    acc.add_assign_ref(&shl_limbs(&z1, m));
    acc.add_assign_ref(&z0);
    acc
}

/// Multiplies by `B^limbs` (limb-granularity left shift).
fn shl_limbs(v: &Natural, limbs: usize) -> Natural {
    if v.is_zero() {
        return Natural::zero();
    }
    let mut out = vec![0; limbs + v.limb_len()];
    out[limbs..].copy_from_slice(v.limbs());
    Natural::from_limbs(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn schoolbook_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (123_456_789, 987_654_321),
        ];
        for (a, b) in cases {
            assert_eq!(mul(&n(a), &n(b)), Natural::from(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn mul_commutes() {
        let a = n(0xDEAD_BEEF_CAFE_BABE);
        let b = n(0x1234_5678_9ABC_DEF0_1111);
        assert_eq!(mul(&a, &b), mul(&b, &a));
    }

    #[test]
    fn karatsuba_matches_schoolbook_on_large_operands() {
        // Build two ~40-limb pseudorandom operands deterministically.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..40u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            limbs_a.push(x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i * 7 + 1);
            limbs_b.push(x);
        }
        let a = Natural::from_limbs(limbs_a);
        let b = Natural::from_limbs(limbs_b);
        assert_eq!(
            karatsuba(a.limbs(), b.limbs()),
            schoolbook(a.limbs(), b.limbs())
        );
    }

    #[test]
    fn karatsuba_handles_skewed_sizes() {
        let mut big = vec![0u64; 60];
        for (i, l) in big.iter_mut().enumerate() {
            *l = (i as u64).wrapping_mul(0xABCD_EF01_2345_6789) | 1;
        }
        let a = Natural::from_limbs(big);
        let b = Natural::from_limbs(vec![u64::MAX; 25]);
        assert_eq!(mul(&a, &b), schoolbook(a.limbs(), b.limbs()));
    }

    #[test]
    fn mul_by_power_of_two_is_shift() {
        let a = n(0x0123_4567_89AB_CDEF);
        let two64 = Natural::from_limbs(vec![0, 1]);
        let prod = mul(&a, &two64);
        assert_eq!(prod.limbs()[0], 0);
        assert_eq!(prod.limbs()[1], 0x0123_4567_89AB_CDEF);
    }
}
