//! Fixture: whole-workspace lock-graph violations (cycle + hot-path).

struct Core {
    table: Mutex<u64>,
    stats: Mutex<u64>,
}

impl Core {
    fn ab(&self) -> u64 {
        let t = self.table.lock();
        let s = self.stats.lock();
        *t + *s
    }
    fn ba(&self) -> u64 {
        let s = self.stats.lock();
        let t = self.table.lock();
        *t + *s
    }
    fn hot(&self) -> u64 {
        let g = self.stats.lock();
        helper(*g)
    }
}

fn helper(x: u64) -> u64 {
    mont_mul(x, x)
}

fn mont_mul(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}
