//! Property-based tests for encoding-quantization and batch compression.

use codec::{BatchCodec, Quantizer, QuantizerConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = QuantizerConfig> {
    (4u32..=30, 1u32..=16, 0.001f64..10.0).prop_map(|(r, p, alpha)| QuantizerConfig {
        alpha,
        r_bits: r,
        participants: p,
        clip: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantize_roundtrip_error_bounded(cfg in arb_config(), frac in -1.0f64..=1.0) {
        let q = Quantizer::new(cfg).unwrap();
        let m = frac * cfg.alpha;
        let back = q.dequantize(q.quantize(m).unwrap());
        prop_assert!((m - back).abs() <= q.max_error() + 1e-15);
    }

    #[test]
    fn quantized_values_fit_r_bits(cfg in arb_config(), frac in -1.0f64..=1.0) {
        let q = Quantizer::new(cfg).unwrap();
        let v = q.quantize(frac * cfg.alpha).unwrap();
        prop_assert!(v < (1u64 << cfg.r_bits));
    }

    #[test]
    fn quantization_is_monotone(cfg in arb_config(), a in -1.0f64..=1.0, b in -1.0f64..=1.0) {
        let q = Quantizer::new(cfg).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ql = q.quantize(lo * cfg.alpha).unwrap();
        let qh = q.quantize(hi * cfg.alpha).unwrap();
        prop_assert!(ql <= qh);
    }

    #[test]
    fn sum_of_max_terms_never_overflows_slot(cfg in arb_config()) {
        let q = Quantizer::new(cfg).unwrap();
        let max = q.quantize(cfg.alpha).unwrap();
        let total = max as u128 * cfg.max_terms() as u128;
        prop_assert!(total < 1u128 << cfg.slot_bits());
    }

    #[test]
    fn pack_unpack_identity(
        cfg in arb_config(),
        key_pow in 7u32..=11, // 128..2048-bit keys
        fracs in proptest::collection::vec(-1.0f64..=1.0, 0..200),
    ) {
        let key_bits = 1u32 << key_pow;
        prop_assume!(key_bits / cfg.slot_bits() >= 2);
        let codec = BatchCodec::new(cfg, key_bits).unwrap();
        let values: Vec<f64> = fracs.iter().map(|f| f * cfg.alpha).collect();
        let packed = codec.pack(&values).unwrap();
        prop_assert_eq!(packed.len(), codec.words_for(values.len()));
        let back = codec.unpack(&packed, values.len()).unwrap();
        let bound = codec.quantizer().max_error() + 1e-15;
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= bound, "{} vs {}", v, b);
        }
    }

    #[test]
    fn packed_addition_is_slotwise(
        cfg in arb_config(),
        pairs in proptest::collection::vec((-0.5f64..=0.5, -0.5f64..=0.5), 1..120),
    ) {
        prop_assume!(cfg.participants >= 2);
        let codec = BatchCodec::new(cfg, 1024).unwrap();
        let a: Vec<f64> = pairs.iter().map(|(x, _)| x * cfg.alpha).collect();
        let b: Vec<f64> = pairs.iter().map(|(_, y)| y * cfg.alpha).collect();
        let sum = codec.add_packed(&codec.pack(&a).unwrap(), &codec.pack(&b).unwrap());
        let decoded = codec.unpack_sums(&sum, pairs.len(), 2).unwrap();
        let bound = 2.0 * codec.quantizer().max_error() + 1e-15;
        for i in 0..pairs.len() {
            prop_assert!((decoded[i] - (a[i] + b[i])).abs() <= bound);
        }
    }

    #[test]
    fn packed_words_below_key_bound(
        cfg in arb_config(),
        fracs in proptest::collection::vec(-1.0f64..=1.0, 1..300),
    ) {
        let codec = BatchCodec::new(cfg, 1024).unwrap();
        let values: Vec<f64> = fracs.iter().map(|f| f * cfg.alpha).collect();
        for w in codec.pack(&values).unwrap() {
            prop_assert!(w.bit_len() < 1024, "packed word must be a valid plaintext");
        }
    }

    #[test]
    fn compression_ratio_matches_eq11(cfg in arb_config(), count in 1usize..5000) {
        let codec = BatchCodec::new(cfg, 2048).unwrap();
        let n = codec.slots_per_word();
        // Eq. 11: ratio = count / ceil(count / n)
        let expected = count as f64 / count.div_ceil(n) as f64;
        prop_assert!((codec.compression_ratio(count) - expected).abs() < 1e-9);
        prop_assert!(codec.plaintext_space_utilization(count) <= 1.0);
    }
}
