//! Error types for the homomorphic-encryption layer.

use std::fmt;

/// Result alias for HE operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by key generation and HE operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key size is too small to be meaningful.
    KeySizeTooSmall {
        /// Requested size in bits.
        bits: u32,
        /// Minimum supported size.
        min: u32,
    },
    /// A plaintext was not strictly below the plaintext modulus.
    PlaintextTooLarge {
        /// Bits of the offending plaintext.
        plaintext_bits: u32,
        /// Bits of the modulus.
        modulus_bits: u32,
    },
    /// A ciphertext was outside the ciphertext space.
    CiphertextOutOfRange,
    /// Two ciphertexts from different keys were combined.
    KeyMismatch,
    /// An aggregation input failed the key-fingerprint check: the
    /// ciphertext at `index` belongs to a different key than the one
    /// performing the fold. Unlike [`Error::KeyMismatch`], this keeps the
    /// position, so a 100k-party round can name the offending upload.
    AggregandKeyMismatch {
        /// Zero-based position of the offending ciphertext in the batch.
        index: usize,
    },
    /// A scheme parameter was outside its supported range.
    InvalidParameter(&'static str),
    /// An arithmetic-layer failure (prime generation, inverse, ...).
    Arithmetic(mpint::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeySizeTooSmall { bits, min } => {
                write!(f, "key size {bits} below minimum {min} bits")
            }
            Error::PlaintextTooLarge {
                plaintext_bits,
                modulus_bits,
            } => write!(
                f,
                "plaintext of {plaintext_bits} bits exceeds the {modulus_bits}-bit plaintext space"
            ),
            Error::CiphertextOutOfRange => write!(f, "ciphertext outside the ciphertext space"),
            Error::KeyMismatch => write!(f, "ciphertexts were produced under different keys"),
            Error::AggregandKeyMismatch { index } => {
                write!(
                    f,
                    "ciphertext at index {index} was produced under a different key"
                )
            }
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Error::Arithmetic(e) => write!(f, "arithmetic error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Arithmetic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mpint::Error> for Error {
    fn from(e: mpint::Error) -> Self {
        Error::Arithmetic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(Error::KeySizeTooSmall { bits: 8, min: 64 }
            .to_string()
            .contains("minimum"));
        assert!(Error::PlaintextTooLarge {
            plaintext_bits: 70,
            modulus_bits: 64
        }
        .to_string()
        .contains("70"));
        assert!(Error::KeyMismatch.to_string().contains("different keys"));
        assert_eq!(
            Error::AggregandKeyMismatch { index: 41 }.to_string(),
            "ciphertext at index 41 was produced under a different key"
        );
        assert!(Error::InvalidParameter("s out of range")
            .to_string()
            .contains("s out of range"));
        let wrapped: Error = mpint::Error::NoInverse.into();
        assert!(wrapped.to_string().contains("inverse"));
    }
}
