//! Offline stand-in for `rayon`.
//!
//! `par_iter()` here returns the ordinary sequential iterator, so every
//! rayon call site compiles and produces identical results with the
//! parallelism degraded to 1. Hot paths that matter for wall-clock
//! performance in this repository are modelled by the GPU simulator, not
//! by host-thread fan-out, so sequential execution preserves semantics.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude {
    //! Parallel-iterator traits (sequentially implemented).

    /// `.par_iter()` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type (here: the sequential borrow iterator).
        type Iter: Iterator;

        /// Returns a "parallel" iterator over `&self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        /// Produced item type.
        type Item;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Converts into a "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` on slices and `Vec`s.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type.
        type Iter: Iterator;

        /// Returns a "parallel" iterator over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
    }
}
