//! The client↔server network simulator.
//!
//! The paper's testbed connects four servers over Gigabit Ethernet
//! (Sec. VI-B); communication cost there is dominated not by raw
//! bandwidth but by the *number of ciphertexts* each message carries —
//! FATE serializes every `PaillierEncryptedNumber` individually, which is
//! why batch compression (fewer ciphertexts) wins far more than the byte
//! reduction alone would suggest. The model here charges, per message:
//!
//! ```text
//! t = latency + ciphertexts · per_ciphertext_seconds + bytes / bandwidth
//! ```
//!
//! with optional packet loss (the whole message retries, adding latency
//! and bytes). All times are simulated; no real sockets are involved, but
//! every byte that would cross the wire is counted.

use parking_lot::Mutex;

use crate::{Error, Result};

/// Static description of a link and its serialization stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Link bandwidth in bytes/second (Gigabit Ethernet ≈ 125 MB/s).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds.
    pub latency_seconds: f64,
    /// Serialization/deserialization cost per ciphertext object. This is
    /// the FATE-style per-object overhead; FLBooster's batched binary
    /// framing sets it lower (see [`NetworkConfig::flbooster_profile`]).
    pub per_ciphertext_seconds: f64,
    /// Probability that a message is dropped and must be retried.
    pub drop_probability: f64,
    /// Maximum send attempts before reporting failure.
    pub max_attempts: u32,
}

impl NetworkConfig {
    /// FATE-style profile: Gigabit link, per-object Python serialization.
    ///
    /// `per_ciphertext_seconds` is calibrated so that a CPU-HE epoch
    /// splits ≈50% HE / ≈50% communication at 1024-bit keys (each value
    /// crosses the NIC several times per aggregation round), matching the
    /// paper's Fig. 1 / Table VI FATE rows.
    pub fn fate_profile() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 125.0e6,
            latency_seconds: 2.0e-4,
            per_ciphertext_seconds: 4.5e-4,
            drop_probability: 0.0,
            max_attempts: 5,
        }
    }

    /// FLBooster's transport: same link, but ciphertexts travel in packed
    /// binary buffers instead of per-object pickles, cutting the
    /// per-object overhead ~5x (calibrated to the Table VI FLBooster
    /// component shares).
    pub fn flbooster_profile() -> Self {
        NetworkConfig {
            per_ciphertext_seconds: 8.4e-5,
            ..Self::fate_profile()
        }
    }

    /// A lossy variant for failure-injection tests.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Messages successfully delivered.
    pub messages: u64,
    /// Ciphertexts carried.
    pub ciphertexts: u64,
    /// Payload bytes carried (including retransmissions).
    pub bytes: u64,
    /// Simulated seconds spent communicating.
    pub seconds: f64,
    /// Retransmissions performed.
    pub retries: u64,
}

/// The simulated link.
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    stats: Mutex<NetStats>,
    /// Deterministic xorshift state for drop decisions.
    rng_state: Mutex<u64>,
}

impl Network {
    /// Creates a link with the given profile and a deterministic seed for
    /// loss decisions.
    pub fn new(cfg: NetworkConfig, seed: u64) -> Self {
        Network {
            cfg,
            stats: Mutex::new(NetStats::default()),
            rng_state: Mutex::new(seed | 1),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Sends one message carrying `ciphertexts` ciphertext objects and
    /// `bytes` payload bytes; returns the simulated seconds it took
    /// (including any retries).
    pub fn send(&self, ciphertexts: u64, bytes: u64) -> Result<f64> {
        let per_try = self.cfg.latency_seconds
            + ciphertexts as f64 * self.cfg.per_ciphertext_seconds
            + bytes as f64 / self.cfg.bandwidth_bytes_per_sec;
        let mut total = 0.0;
        let mut sent_bytes = 0u64;
        let mut retries = 0u64;
        for attempt in 1..=self.cfg.max_attempts {
            total += per_try;
            sent_bytes += bytes;
            if !self.drop() {
                let mut s = self.stats.lock();
                s.messages += 1;
                s.ciphertexts += ciphertexts;
                s.bytes += sent_bytes;
                s.seconds += total;
                s.retries += retries;
                return Ok(total);
            }
            retries += 1;
            let _ = attempt;
        }
        Err(Error::NetworkFailure {
            attempts: self.cfg.max_attempts,
        })
    }

    /// Broadcast: the server sends the same message to `receivers` peers
    /// (sequentially on one NIC, as a parameter server does).
    pub fn broadcast(&self, receivers: u32, ciphertexts: u64, bytes: u64) -> Result<f64> {
        let mut total = 0.0;
        for _ in 0..receivers {
            total += self.send(ciphertexts, bytes)?;
        }
        Ok(total)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Clears the traffic counters.
    pub fn reset(&self) {
        *self.stats.lock() = NetStats::default();
    }

    fn drop(&self) -> bool {
        if self.cfg.drop_probability <= 0.0 {
            return false;
        }
        let mut s = self.rng_state.lock();
        // xorshift64*
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.cfg.drop_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_time_formula() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let t = net.send(10, 125_000_000).unwrap();
        // latency + 10 * 0.45ms + 1 second of bytes
        let expected = 2.0e-4 + 10.0 * 4.5e-4 + 1.0;
        assert!((t - expected).abs() < 1e-9);
        let s = net.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.ciphertexts, 10);
        assert_eq!(s.bytes, 125_000_000);
    }

    #[test]
    fn per_ciphertext_cost_dominates_small_payloads() {
        // The BC insight: 32 ciphertexts cost ~32x one ciphertext even at
        // equal byte volume.
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let many = net.send(32, 8192).unwrap();
        let one = net.send(1, 8192).unwrap();
        assert!(many > 20.0 * one, "many={many} one={one}");
    }

    #[test]
    fn broadcast_multiplies() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let single = net.send(1, 100).unwrap();
        let bcast = net.broadcast(4, 1, 100).unwrap();
        assert!((bcast - 4.0 * single).abs() < 1e-12);
        assert_eq!(net.stats().messages, 5);
    }

    #[test]
    fn lossy_link_retries_and_counts() {
        let cfg = NetworkConfig::fate_profile().with_drop_probability(0.5);
        let net = Network::new(cfg, 42);
        let mut retried = false;
        for _ in 0..100 {
            match net.send(1, 100) {
                Ok(_) => {}
                Err(Error::NetworkFailure { attempts }) => assert_eq!(attempts, 5),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        if net.stats().retries > 0 {
            retried = true;
        }
        assert!(retried, "a 50% lossy link must retry within 100 sends");
    }

    #[test]
    fn hopeless_link_fails() {
        let cfg = NetworkConfig::fate_profile().with_drop_probability(1.0);
        let net = Network::new(cfg, 7);
        assert_eq!(net.send(1, 1), Err(Error::NetworkFailure { attempts: 5 }));
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn reset_clears() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        net.send(1, 1).unwrap();
        net.reset();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn flbooster_profile_is_cheaper_per_ciphertext() {
        let f = NetworkConfig::fate_profile();
        let b = NetworkConfig::flbooster_profile();
        assert!(b.per_ciphertext_seconds < f.per_ciphertext_seconds);
        assert_eq!(b.bandwidth_bytes_per_sec, f.bandwidth_bytes_per_sec);
    }
}
