struct Pool {
    inner: Mutex<Vec<u32>>,
}

struct Watcher<'a> {
    guard: MutexGuard<'a, Vec<u32>>,
}

impl Pool {
    fn stash(&self) -> Watcher<'_> {
        let g = self.inner.lock();
        Watcher { guard: g }
    }
    fn hand_off(&self) {
        let g = self.inner.lock();
        consume(g);
    }
    fn leak_temp(&self) {
        watch(self.inner.lock());
    }
    fn acquire(&self) -> MutexGuard<'_, Vec<u32>> {
        self.inner.lock()
    }
    fn stash_short(&self) -> Watcher<'_> {
        let guard = self.inner.lock();
        Watcher { guard }
    }
}

fn consume(_g: MutexGuard<'_, Vec<u32>>) {}
fn watch(_g: MutexGuard<'_, Vec<u32>>) {}
