//! A software GPU execution model for the FLBooster reproduction.
//!
//! The paper accelerates homomorphic encryption by running CIOS Montgomery
//! kernels on an NVIDIA RTX 3090 and attributes much of the win to a
//! *resource manager* that balances threads, registers, memory, and branch
//! divergence across stream multiprocessors (Sec. III-C, IV-A2). No GPU is
//! available in this environment, so this crate substitutes a faithful
//! *execution-model simulator*:
//!
//! - [`DeviceConfig`] describes a device (SM count, threads/registers/
//!   shared memory per SM, warp size, PCIe bandwidth), with an
//!   [`DeviceConfig::rtx3090`] preset matching the paper's testbed.
//! - [`Device`] executes *kernels* — data-parallel closures over a grid —
//!   on a CPU thread pool, while accounting occupancy, SM utilization,
//!   branch divergence, register pressure, and host↔device transfer bytes
//!   exactly as the real launch would.
//! - [`resource::ResourceManager`] implements the paper's manager: a table
//!   of known-good block sizes, a marked memory table that recycles device
//!   allocations, per-task register budgeting, and branch combining.
//! - [`stream::Stream`] models the pipelined overlap of transfer and
//!   compute used by FLBooster's processing pipeline (paper Fig. 4).
//!
//! What this preserves from the paper: the *relative* behaviour that the
//! evaluation measures — GPU-parallel HE beating CPU HE by orders of
//! magnitude, SM utilization falling as key size (and thus register
//! pressure) grows (paper Fig. 6), and the resource manager improving
//! occupancy. Absolute throughput is bounded by the host CPU.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod device;
pub mod kernel;
pub mod memory;
pub mod resource;
pub mod stats;
pub mod stream;

pub use config::DeviceConfig;
pub use device::Device;
pub use kernel::{ItemOutcome, KernelSpec, LaunchReport};
pub use stats::{DeviceStats, UtilizationSample};
