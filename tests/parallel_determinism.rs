//! Cross-layer determinism under the work-stealing pool: every public
//! parallel surface — shim iterators, GPU-sim launches, HE batches —
//! must produce bit-identical results at any thread count, and a panic
//! in one work item must surface without wedging later work.

use std::sync::Arc;

use gpu_sim::{Device, DeviceConfig, ItemOutcome};
use he::paillier::{ObfuscatorPool, PaillierKeyPair};
use he::{CpuHe, GpuHe, HeBackend};
use mpint::Natural;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 4, 16];

/// Runs `body` inside a dedicated pool of `threads` workers.
fn in_pool<T: Send>(threads: usize, body: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build")
        .install(body)
}

#[test]
fn collect_order_and_zip_alignment_are_thread_count_invariant() {
    let data: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
    let weights: Vec<u64> = (0..1000).map(|i| i % 13).collect();
    let reference: Vec<u64> = data
        .iter()
        .zip(&weights)
        .enumerate()
        .map(|(i, (d, w))| d * w + i as u64)
        .collect();
    for threads in THREAD_COUNTS {
        let got: Vec<u64> = in_pool(threads, || {
            data.par_iter()
                .zip(weights.par_iter())
                .enumerate()
                .map(|(i, (d, w))| d * w + i as u64)
                .collect()
        });
        assert_eq!(got, reference, "threads={threads}");
    }
}

#[test]
fn device_launch_outputs_identical_across_thread_counts() {
    let inputs: Vec<u64> = (0..512).map(|i| i * i + 1).collect();
    let spec = gpu_sim::KernelSpec::simple("determinism_probe");
    let mut reference: Option<(Vec<u64>, usize)> = None;
    for threads in THREAD_COUNTS {
        let device = Device::new(DeviceConfig::rtx3090());
        let (outputs, report) = in_pool(threads, || {
            device.launch(&spec, &inputs, 0, 0, |i, &x| {
                ItemOutcome::new(x.wrapping_mul(0x9E37_79B9).rotate_left((i % 31) as u32), 3)
            })
        });
        assert_eq!(report.pool_threads, threads, "threads={threads}");
        match &reference {
            None => reference = Some((outputs, report.items)),
            Some((ref_out, ref_items)) => {
                assert_eq!(&outputs, ref_out, "threads={threads}");
                assert_eq!(report.items, *ref_items);
            }
        }
    }
}

#[test]
fn he_batches_are_bit_identical_across_thread_counts() {
    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD0_0D);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ms: Vec<Natural> = (0..96).map(|_| Natural::from(rng.next_u64())).collect();
    let seed = 0xFEED_F00D;

    let mut reference: Option<Vec<Natural>> = None;
    for threads in THREAD_COUNTS {
        // Exercise both backends: CpuHe parallelizes directly over the
        // shim; GpuHe goes through Device::launch.
        let cpu = CpuHe::default();
        let gpu = GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())));
        let (cts_cpu, cts_gpu) = in_pool(threads, || {
            let a = cpu.encrypt_batch(&keys.public, &ms, seed).expect("cpu").0;
            let b = gpu.encrypt_batch(&keys.public, &ms, seed).expect("gpu").0;
            (a, b)
        });
        let values: Vec<Natural> = cts_cpu.iter().map(|c| c.value.clone()).collect();
        let gpu_values: Vec<Natural> = cts_gpu.iter().map(|c| c.value.clone()).collect();
        assert_eq!(
            values, gpu_values,
            "cpu and gpu backends agree at threads={threads}"
        );
        match &reference {
            None => reference = Some(values),
            Some(r) => assert_eq!(&values, r, "threads={threads}"),
        }
    }
}

#[test]
fn pooled_encryption_is_bit_identical_to_inline_at_every_thread_count() {
    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB11D);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ms: Vec<Natural> = (0..64).map(|_| Natural::from(rng.next_u64())).collect();
    let seed = 0xCAFE_D00D;

    // Reference: no pool, single thread.
    let reference: Vec<Natural> = in_pool(1, || {
        CpuHe::default()
            .encrypt_batch(&keys.public, &ms, seed)
            .expect("inline")
            .0
            .iter()
            .map(|c| c.value.clone())
            .collect()
    });

    for threads in THREAD_COUNTS {
        // Pool prefilled concurrently inside the same thread pool that
        // then drains it — the refill fans r^n out across workers.
        let (cpu_vals, gpu_vals, hits) = in_pool(threads, || {
            let pool = Arc::new(ObfuscatorPool::new(&keys.public));
            pool.prefill_batch(&keys.public, seed, ms.len())
                .expect("prefill");
            assert_eq!(pool.indexed_len(), ms.len(), "prefill sized to batch");
            let cpu = CpuHe::default().with_pool(Arc::clone(&pool));
            let a = cpu.encrypt_batch(&keys.public, &ms, seed).expect("cpu").0;
            let cpu_hits = pool.hits();

            let gpu_pool = Arc::new(ObfuscatorPool::new(&keys.public));
            gpu_pool
                .prefill_batch(&keys.public, seed, ms.len())
                .expect("prefill");
            let gpu = GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())))
                .with_pool(Arc::clone(&gpu_pool));
            let b = gpu.encrypt_batch(&keys.public, &ms, seed).expect("gpu").0;
            (
                a.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
                b.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
                cpu_hits,
            )
        });
        assert_eq!(hits, ms.len() as u64, "every item served from the pool");
        assert_eq!(cpu_vals, reference, "pooled cpu threads={threads}");
        assert_eq!(gpu_vals, reference, "pooled gpu threads={threads}");
    }

    // Partially-filled pool: the first half comes from the pool, the
    // second falls back inline — outputs still identical.
    let pool = Arc::new(ObfuscatorPool::new(&keys.public));
    pool.prefill_batch(&keys.public, seed, ms.len() / 2)
        .expect("prefill");
    let cpu = CpuHe::default().with_pool(Arc::clone(&pool));
    let half: Vec<Natural> = cpu
        .encrypt_batch(&keys.public, &ms, seed)
        .expect("half-pooled")
        .0
        .iter()
        .map(|c| c.value.clone())
        .collect();
    assert_eq!(half, reference, "partial pool still bit-identical");
    assert_eq!(pool.hits(), (ms.len() / 2) as u64);
    assert_eq!(pool.misses(), (ms.len() - ms.len() / 2) as u64);
}

#[test]
fn weighted_aggregate_matches_scalar_mul_add_loop_across_thread_counts() {
    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0x57A5);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let parties = 8usize;
    let slots = 12usize;
    let weights: Vec<u64> = (0..parties as u64).map(|k| k * 977 + 1).collect();
    let batches: Vec<Vec<_>> = (0..parties)
        .map(|k| {
            let ms: Vec<Natural> = (0..slots as u64)
                .map(|j| Natural::from(j * 31 + k as u64 + 1))
                .collect();
            CpuHe::default()
                .encrypt_batch(&keys.public, &ms, k as u64)
                .expect("encrypt")
                .0
        })
        .collect();

    // Naive reference: per-party scalar_mul then homomorphic add.
    let naive: Vec<Natural> = (0..slots)
        .map(|j| {
            let mut acc = keys.public.zero_ciphertext();
            for (k, batch) in batches.iter().enumerate() {
                let scaled = keys
                    .public
                    .checked_scalar_mul(&batch[j], &Natural::from(weights[k]))
                    .expect("scalar_mul");
                acc = keys.public.checked_add(&acc, &scaled).expect("add");
            }
            acc.value
        })
        .collect();

    let mut reference: Option<Vec<Natural>> = None;
    for threads in THREAD_COUNTS {
        let (cpu_vals, gpu_vals) = in_pool(threads, || {
            let cpu = CpuHe::default();
            let gpu = GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())));
            let a = cpu
                .weighted_aggregate(&keys.public, &batches, &weights)
                .expect("cpu")
                .0;
            let b = gpu
                .weighted_aggregate(&keys.public, &batches, &weights)
                .expect("gpu")
                .0;
            (
                a.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
                b.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
            )
        });
        assert_eq!(cpu_vals, naive, "straus == naive at threads={threads}");
        assert_eq!(gpu_vals, naive, "gpu straus == naive at threads={threads}");
        match &reference {
            None => reference = Some(cpu_vals),
            Some(r) => assert_eq!(&cpu_vals, r, "threads={threads}"),
        }
    }
}

#[test]
fn sharded_and_tree_aggregation_bit_identical_at_any_thread_count() {
    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5AAD);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let parties = 13usize;
    let slots = 6usize;
    let weights: Vec<u64> = (0..parties as u64).map(|k| k * 977 + 1).collect();
    let batches: Vec<Vec<_>> = (0..parties)
        .map(|k| {
            let ms: Vec<Natural> = (0..slots as u64)
                .map(|j| Natural::from(j * 131 + k as u64 + 2))
                .collect();
            CpuHe::default()
                .encrypt_batch(&keys.public, &ms, 0x900 + k as u64)
                .expect("encrypt")
                .0
        })
        .collect();

    // Flat single-chain fold on one thread is the reference everything
    // else must reproduce bit for bit.
    let flat: Vec<Natural> = in_pool(1, || {
        CpuHe::default()
            .weighted_aggregate(&keys.public, &batches, &weights)
            .expect("flat")
            .0
            .iter()
            .map(|c| c.value.clone())
            .collect()
    });

    // HE layer: every shard count at every thread count, CPU and GPU.
    for threads in THREAD_COUNTS {
        for shards in [1usize, 2, 3, 7, 13] {
            let (cpu_vals, gpu_vals) = in_pool(threads, || {
                let cpu = CpuHe::default();
                let gpu = GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())));
                let a = cpu
                    .weighted_aggregate_sharded(&keys.public, &batches, &weights, shards)
                    .expect("cpu sharded")
                    .0;
                let b = gpu
                    .weighted_aggregate_sharded(&keys.public, &batches, &weights, shards)
                    .expect("gpu sharded")
                    .0;
                (
                    a.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
                    b.iter().map(|c| c.value.clone()).collect::<Vec<_>>(),
                )
            });
            assert_eq!(cpu_vals, flat, "cpu threads={threads} shards={shards}");
            assert_eq!(gpu_vals, flat, "gpu threads={threads} shards={shards}");
        }
    }

    // FL layer: edge-aggregator trees over the same batches.
    let vectors: Vec<fl::backend::EncryptedVector> = batches
        .iter()
        .map(|cts| fl::backend::EncryptedVector {
            cts: cts.clone(),
            count: slots,
        })
        .collect();
    for threads in THREAD_COUNTS {
        for arity in [2usize, 4, 16] {
            let vals: Vec<Natural> = in_pool(threads, || {
                let acc = fl::Accelerator::new(fl::BackendKind::Fate, keys.clone(), 4)
                    .expect("accel")
                    .with_topology(fl::AggregationTopology::tree(arity))
                    .with_aggregation_shards(3);
                acc.aggregate_weighted(&vectors, &weights)
                    .expect("tree")
                    .cts
                    .iter()
                    .map(|c| c.value.clone())
                    .collect()
            });
            assert_eq!(vals, flat, "tree threads={threads} arity={arity}");
        }
    }
}

#[test]
fn flcheck_report_is_byte_identical_across_thread_counts() {
    // The analyzer fans the per-file phase out over the shim pool; the
    // report it renders must not depend on worker count or scheduling.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let single = in_pool(1, || flcheck::run(root).expect("scan at 1 thread"));
    let wide = in_pool(16, || flcheck::run(root).expect("scan at 16 threads"));
    let default = flcheck::run(root).expect("scan on the global pool");
    assert_eq!(
        single.render_json(),
        wide.render_json(),
        "report bytes differ between 1 and 16 workers"
    );
    assert_eq!(
        single.render_json(),
        default.render_json(),
        "report bytes differ between pinned and global pools"
    );
}

#[test]
fn panic_in_one_item_surfaces_and_pool_stays_usable() {
    let hit = std::panic::catch_unwind(|| {
        let v: Vec<u32> = (0..64u32).collect();
        let _: Vec<u32> = v
            .par_iter()
            .map(|&x| {
                if x == 37 {
                    panic!("item 37 exploded");
                }
                x * 2
            })
            .collect();
    });
    let payload = hit.expect_err("the item panic must surface to the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("item 37"), "payload preserved: {msg}");

    // The global pool must keep working after the panic.
    let v: Vec<u32> = (0..256u32).collect();
    let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
    assert_eq!(doubled, (0..256u32).map(|x| x * 2).collect::<Vec<_>>());
}

#[test]
fn dataset_generation_and_pooled_blinding_are_hash_order_free() {
    // Regression for the two result-path maps that used to be HashMaps:
    // the planted-concept table in dataset generation (feeds labels) and
    // the obfuscator pool's indexed store (feeds ciphertext blinding).
    // Both are ordered maps now, so generation and pooled encryption must
    // be bit-identical across pool widths and across map instances (a
    // HashMap would at least *permit* hash-order leaks; BTreeMap cannot).
    let spec = fl::data::generators::DatasetSpec::rcv1();
    let reference = spec.generate(0.00002);
    for threads in THREAD_COUNTS {
        let spec = fl::data::generators::DatasetSpec::rcv1();
        let got = in_pool(threads, move || spec.generate(0.00002));
        assert_eq!(got.rows, reference.rows, "rows differ at threads={threads}");
        assert_eq!(
            got.labels, reference.labels,
            "labels differ at threads={threads}"
        );
    }

    // Pool drained in reverse index order: with the ordered store the
    // handed-out pairs depend only on (seed, index), never on insertion
    // or hash order.
    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0x0DD);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let seed = 0x5EED;
    let ms: Vec<Natural> = (0..16u64).map(|i| Natural::from(i * 131 + 7)).collect();
    let forward: Vec<Natural> = {
        let pool = ObfuscatorPool::new(&keys.public);
        pool.prefill_batch(&keys.public, seed, 16).expect("prefill");
        (0..16)
            .map(|i| {
                let obf = pool.take(seed, i).expect("pair");
                keys.public
                    .encrypt_with_obfuscator(&ms[i], obf)
                    .expect("encrypt")
                    .value
            })
            .collect()
    };
    let backward: Vec<Natural> = {
        let pool = ObfuscatorPool::new(&keys.public);
        pool.prefill_batch(&keys.public, seed, 16).expect("prefill");
        let mut cts: Vec<(usize, Natural)> = (0..16)
            .rev()
            .map(|i| {
                let obf = pool.take(seed, i).expect("pair");
                let ct = keys
                    .public
                    .encrypt_with_obfuscator(&ms[i], obf)
                    .expect("encrypt")
                    .value;
                (i, ct)
            })
            .collect();
        cts.sort_by_key(|(i, _)| *i);
        cts.into_iter().map(|(_, ct)| ct).collect()
    };
    assert_eq!(forward, backward, "take order must not affect ciphertexts");
}

#[test]
fn round_engine_is_thread_count_invariant_and_matches_the_classic_loop() {
    use fl::models::HomoLr;
    use fl::train::{FlEnv, FlModel, TrainConfig};
    use fl::{Accelerator, BackendKind, EngineConfig};

    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0x40B);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let mut spec = fl::data::generators::DatasetSpec::synthetic();
    spec.features = 16;
    spec.nnz_per_row = 16;
    spec.instances = 160;
    let data = spec.generate(1.0);

    let run = |threads: Option<usize>, engine: Option<EngineConfig>| {
        let keys = keys.clone();
        let data = data.clone();
        let body = move || {
            let cfg = TrainConfig {
                batch_size: 40,
                engine,
                ..TrainConfig::default()
            };
            let accel = Accelerator::new(BackendKind::FlBooster, keys, 4).expect("accel");
            let env = FlEnv::new(accel, 1);
            let mut model = HomoLr::new(&data, 4, &cfg);
            let result = model.run_epoch(&env, &cfg, 0).expect("epoch");
            (model.weights().to_vec(), result.breakdown)
        };
        match threads {
            Some(t) => in_pool(t, body),
            None => body(), // the process-global (unbounded) pool
        }
    };

    // The classic sequential loop on one thread is the reference.
    let (classic_w, classic_b) = run(Some(1), None);

    let sweeps: [Option<usize>; 4] = [Some(1), Some(2), Some(8), None];
    let mut pipelined_ref = None;
    for threads in sweeps {
        // Sequential engine: bit-identical weights AND bit-identical
        // breakdown (components, phases, round_seconds) to the classic
        // loop, at every thread count.
        let (w, b) = run(threads, Some(EngineConfig::sequential()));
        assert_eq!(w, classic_w, "sequential engine weights, {threads:?}");
        assert_eq!(b, classic_b, "sequential engine breakdown, {threads:?}");

        // Pipelined engine: same weights and same work, shorter round.
        let (w, b) = run(threads, Some(EngineConfig::default()));
        assert_eq!(w, classic_w, "pipelined engine weights, {threads:?}");
        assert_eq!(b.he_seconds, classic_b.he_seconds, "{threads:?}");
        assert_eq!(b.comm_seconds, classic_b.comm_seconds, "{threads:?}");
        assert_eq!(b.other_seconds, classic_b.other_seconds, "{threads:?}");
        assert_eq!(b.phases, classic_b.phases, "{threads:?}");
        assert!(
            b.round_seconds < classic_b.round_seconds,
            "pipelined {} !< classic {} at {threads:?}",
            b.round_seconds,
            classic_b.round_seconds
        );
        match &pipelined_ref {
            None => pipelined_ref = Some(b),
            Some(r) => assert_eq!(&b, r, "pipelined breakdown drifted at {threads:?}"),
        }
    }
}

#[test]
fn round_engine_straggler_outcomes_identical_at_every_thread_count() {
    use fl::engine::{run_round, EngineConfig};
    use fl::metrics::EpochBreakdown;
    use fl::train::{FlEnv, TrainConfig};
    use fl::{Accelerator, BackendKind};

    let keys = {
        let mut rng = ChaCha8Rng::seed_from_u64(0x57AC);
        PaillierKeyPair::generate(&mut rng, 128).expect("keygen")
    };
    let parties: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            (0..10)
                .map(|i| ((k * 10 + i) as f64 * 0.23).cos() * 0.4)
                .collect()
        })
        .collect();
    let flops = vec![200_000u64; 6];
    let tcfg = TrainConfig::default();
    // Clients 2 and 5 run 80x slower than the rest.
    let multipliers = vec![1.0, 1.0, 80.0, 1.0, 1.0, 80.0];

    let run = |threads: Option<usize>, ecfg: EngineConfig| {
        let keys = keys.clone();
        let parties = parties.clone();
        let flops = flops.clone();
        let tcfg = tcfg.clone();
        let body = move || {
            let accel = Accelerator::new(BackendKind::Fate, keys, 8).expect("accel");
            let profile = accel.network_profile().with_duplex_streams(4);
            let env = FlEnv {
                network: fl::Network::new(profile, 1),
                accel,
            };
            let mut b = EpochBreakdown::default();
            let out = run_round(&env, &ecfg, &tcfg, &parties, &flops, 21, &mut b).expect("round");
            (out, b)
        };
        match threads {
            Some(t) => in_pool(t, body),
            None => body(),
        }
    };

    // Pick a deadline between the fast and slow groups from a probe run.
    let probe = run(
        Some(1),
        EngineConfig::default().with_compute_multipliers(multipliers.clone()),
    )
    .0;
    let deadline = (probe.timelines[1].encrypt_done + probe.timelines[2].encrypt_done) / 2.0;
    let ecfg = EngineConfig::default()
        .with_compute_multipliers(multipliers)
        .with_straggler_timeout(deadline);

    let mut reference = None;
    for threads in [Some(1), Some(2), Some(8), None] {
        let (out, b) = run(threads, ecfg.clone());
        assert_eq!(out.dropped, vec![2, 5], "dropout set at {threads:?}");
        assert_eq!(out.survivors, vec![0, 1, 3, 4], "survivors at {threads:?}");
        match &reference {
            None => reference = Some((out, b)),
            Some((ro, rb)) => {
                // Sums, timelines, and the charged breakdown are all
                // bit-identical across pool widths.
                assert_eq!(&out, ro, "outcome drifted at {threads:?}");
                assert_eq!(&b, rb, "breakdown drifted at {threads:?}");
            }
        }
    }
}
